#include "core/sweep.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "common/error.h"
#include "common/format.h"
#include "common/json.h"
#include "core/algorithm_registry.h"
#include "fsim/engine.h"

namespace indexmac::core {
namespace {

using workloads::parse_sparsity;
using workloads::sparsity_label;

// --- short, CSV-stable identifiers ---------------------------------------

const char* algorithm_id(Algorithm a) {
  return AlgorithmRegistry::instance().by_algorithm(a).id.c_str();
}

/// Raises with every registered id on an unknown one.
Algorithm parse_algorithm(const std::string& id) {
  return AlgorithmRegistry::instance().by_id(id).algorithm;
}

const char* dataflow_id(kernels::Dataflow d) {
  switch (d) {
    case kernels::Dataflow::kAStationary: return "a";
    case kernels::Dataflow::kBStationary: return "b";
    case kernels::Dataflow::kCStationary: return "c";
  }
  raise("unknown dataflow");
}

kernels::Dataflow parse_dataflow(const std::string& id) {
  if (id == "a") return kernels::Dataflow::kAStationary;
  if (id == "b") return kernels::Dataflow::kBStationary;
  if (id == "c") return kernels::Dataflow::kCStationary;
  raise("unknown dataflow \"" + id + "\" (known: a, b, c)");
}

SweepMode parse_mode(const std::string& id) {
  if (id == "exact") return SweepMode::kExact;
  if (id == "sampled") return SweepMode::kSampled;
  raise("unknown sweep mode \"" + id + "\" (known: exact, sampled)");
}

// --- processor overrides and digest ---------------------------------------

/// The sweep-overridable processor knobs, addressed by dotted name.
void apply_processor_override(timing::ProcessorConfig& p, const std::string& key,
                              std::uint64_t v) {
  IMAC_CHECK(v > 0, "processor override \"" + key + "\" must be positive");
  const auto u = static_cast<unsigned>(v);
  if (key == "scalar.issue_width") p.scalar.issue_width = u;
  else if (key == "scalar.rob_entries") p.scalar.rob_entries = u;
  else if (key == "scalar.lsq_entries") p.scalar.lsq_entries = u;
  else if (key == "scalar.mispredict_penalty") p.scalar.mispredict_penalty = u;
  else if (key == "vector.queue_entries") p.vector.queue_entries = u;
  else if (key == "vector.load_queues") p.vector.load_queues = u;
  else if (key == "vector.store_queues") p.vector.store_queues = u;
  else if (key == "vector.mac_latency") p.vector.mac_latency = u;
  else if (key == "vector.alu_latency") p.vector.alu_latency = u;
  else if (key == "vector.dispatch_latency") p.vector.dispatch_latency = u;
  else if (key == "vector.to_scalar_latency") p.vector.to_scalar_latency = u;
  else if (key == "memory.l2_size_kib") p.memory.l2.size_bytes = v * 1024;
  else if (key == "memory.l2_hit_latency") p.memory.l2.hit_latency = u;
  else if (key == "memory.dram_latency") p.memory.dram_latency = u;
  else if (key == "memory.dram_line_occupancy") p.memory.dram_line_occupancy = u;
  else raise("unknown processor override \"" + key + "\"");
}

std::uint64_t fnv1a(const std::string& data, std::uint64_t h = 0xcbf29ce484222325ull) {
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

void append_cache(std::string& out, const CacheConfig& c) {
  out += std::to_string(c.size_bytes) + "/" + std::to_string(c.ways) + "/" +
         std::to_string(c.line_bytes) + "/" + std::to_string(c.hit_latency) + ";";
}

/// Canonical field-by-field serialization: two configs digest equal iff
/// every timing-relevant parameter matches.
std::string serialize_processor(const timing::ProcessorConfig& p) {
  std::string s = "scalar:";
  for (const unsigned v :
       {p.scalar.fetch_width, p.scalar.issue_width, p.scalar.commit_width, p.scalar.rob_entries,
        p.scalar.lsq_entries, p.scalar.phys_int_regs, p.scalar.phys_fp_regs,
        p.scalar.mispredict_penalty, p.scalar.alu_latency, p.scalar.mul_latency})
    s += std::to_string(v) + ",";
  s += "vector:";
  for (const unsigned v :
       {p.vector.lanes, p.vector.queue_entries, p.vector.load_queues, p.vector.store_queues,
        p.vector.mac_latency, p.vector.alu_latency, p.vector.slide_latency,
        p.vector.move_latency, p.vector.reduction_latency, p.vector.gather_lanes,
        p.vector.to_scalar_latency, p.vector.dispatch_latency})
    s += std::to_string(v) + ",";
  s += "mem:";
  append_cache(s, p.memory.l1i);
  append_cache(s, p.memory.l1d);
  append_cache(s, p.memory.l2);
  for (const unsigned v : {p.memory.l2_banks, p.memory.l2_bank_occupancy, p.memory.dram_latency,
                           p.memory.dram_line_occupancy})
    s += std::to_string(v) + ",";
  return s;
}

// --- spec parsing ---------------------------------------------------------

std::vector<std::string> string_list(const JsonValue& v, const char* what) {
  std::vector<std::string> out;
  for (const JsonValue& e : v.as_array()) out.push_back(e.as_string());
  IMAC_CHECK(!out.empty(), std::string("sweep spec: \"") + what + "\" must be non-empty");
  return out;
}

std::vector<unsigned> uint_list(const JsonValue& v, const char* what) {
  std::vector<unsigned> out;
  for (const JsonValue& e : v.as_array()) out.push_back(static_cast<unsigned>(e.as_uint()));
  IMAC_CHECK(!out.empty(), std::string("sweep spec: \"") + what + "\" must be non-empty");
  return out;
}

}  // namespace

const char* sweep_mode_name(SweepMode mode) {
  return mode == SweepMode::kExact ? "exact" : "sampled";
}

SweepSpec parse_sweep_spec(const std::string& json_text) {
  const JsonValue doc = parse_json(json_text);
  IMAC_CHECK(doc.is_object(), "sweep spec: document must be a JSON object");

  static const char* kKnown[] = {"name",     "workloads", "sparsities", "algorithms",
                                 "unroll",   "dataflows", "tile_rows",  "mode",
                                 "engine",   "seed",      "sample_rows",
                                 "sample_full_strips",    "processor"};
  for (const auto& [key, value] : doc.members()) {
    bool known = false;
    for (const char* k : kKnown) known = known || key == k;
    IMAC_CHECK(known, "sweep spec: unknown key \"" + key + "\"");
  }

  SweepSpec spec;
  spec.name = doc.at("name").as_string();
  spec.suites = string_list(doc.at("workloads"), "workloads");
  for (const std::string& s : spec.suites)
    (void)workloads::suite(s);  // unknown suites fail at parse time

  if (const JsonValue* v = doc.get("sparsities")) {
    spec.sparsities.clear();
    for (const std::string& label : string_list(*v, "sparsities"))
      spec.sparsities.push_back(parse_sparsity(label));
  }
  if (const JsonValue* v = doc.get("algorithms")) {
    spec.algorithms.clear();
    for (const std::string& id : string_list(*v, "algorithms"))
      spec.algorithms.push_back(parse_algorithm(id));
  }
  if (const JsonValue* v = doc.get("unroll")) spec.unrolls = uint_list(*v, "unroll");
  for (const unsigned u : spec.unrolls)
    IMAC_CHECK(u >= 1 && u <= 4,
               "sweep spec: unroll must be in [1,4] (all kernel generators), got " +
                   std::to_string(u));
  if (const JsonValue* v = doc.get("dataflows")) {
    spec.dataflows.clear();
    for (const std::string& id : string_list(*v, "dataflows"))
      spec.dataflows.push_back(parse_dataflow(id));
  }
  if (const JsonValue* v = doc.get("tile_rows")) spec.tile_rows = uint_list(*v, "tile_rows");
  for (const unsigned t : spec.tile_rows)
    IMAC_CHECK(t >= 1 && t <= 16,
               "sweep spec: tile_rows must be in [1,16] (register-file bound), got " +
                   std::to_string(t));
  if (const JsonValue* v = doc.get("mode")) spec.mode = parse_mode(v->as_string());
  if (const JsonValue* v = doc.get("engine")) spec.engine = parse_exec_engine(v->as_string());
  if (spec.mode == SweepMode::kSampled)
    for (const Algorithm alg : spec.algorithms) {
      const AlgorithmDescriptor& d = AlgorithmRegistry::instance().by_algorithm(alg);
      IMAC_CHECK(d.supports_sampled,
                 "sweep spec: sampled mode supports the sparse kernels only (drop \"" + d.id +
                     "\" or use mode \"exact\")");
    }
  if (const JsonValue* v = doc.get("seed")) spec.seed = static_cast<std::uint32_t>(v->as_uint());
  if (const JsonValue* v = doc.get("sample_rows"))
    spec.sample.sample_rows = static_cast<unsigned>(v->as_uint());
  if (const JsonValue* v = doc.get("sample_full_strips"))
    spec.sample.sample_full_strips = static_cast<unsigned>(v->as_uint());
  if (const JsonValue* v = doc.get("processor"))
    for (const auto& [key, value] : v->members())
      apply_processor_override(spec.processor, key, value.as_uint());
  return spec;
}

SweepSpec parse_sweep_spec_file(const std::string& path) {
  std::ifstream file(path);
  IMAC_CHECK(file.good(), "cannot open sweep spec " + path);
  std::stringstream buf;
  buf << file.rdbuf();
  return parse_sweep_spec(buf.str());
}

// --- expansion ------------------------------------------------------------

std::string SweepPoint::cache_key(const SweepSpec& spec) const {
  std::string key = std::string(sweep_mode_name(mode)) + "|" + std::to_string(dims.rows_a) + "x" +
                    std::to_string(dims.k) + "x" + std::to_string(dims.cols_b) + "|" +
                    sparsity_label(sp) + "|" + algorithm_id(config.algorithm) + "|" +
                    dataflow_id(config.kernel.dataflow) + "|u" +
                    std::to_string(config.kernel.unroll) + "|L" +
                    std::to_string(config.tile_rows);
  if (mode == SweepMode::kExact) {
    key += "|seed" + std::to_string(spec.seed);
  } else {
    key += "|sr" + std::to_string(spec.sample.sample_rows) + "|sf" +
           std::to_string(spec.sample.sample_full_strips);
  }
  char proc[20];
  std::snprintf(proc, sizeof proc, "|p%016llx",
                static_cast<unsigned long long>(fnv1a(serialize_processor(spec.processor))));
  key += proc;
  return key;
}

std::vector<SweepPoint> expand_sweep(const SweepSpec& spec) {
  std::vector<SweepPoint> out;
  for (const std::string& suite_name : spec.suites) {
    const workloads::Suite& s = workloads::suite(suite_name);
    const std::vector<sparse::Sparsity>& sparsities =
        spec.sparsities.empty() ? s.sparsities : spec.sparsities;
    for (const sparse::Sparsity sp : sparsities)
      for (const workloads::Workload& w : s.workloads)
        for (const Algorithm alg : spec.algorithms)
          for (const kernels::Dataflow df : spec.dataflows)
            for (const unsigned unroll : spec.unrolls)
              for (const unsigned tile : spec.tile_rows) {
                // Structurally-unsupported grid cells are skipped, not
                // errors — each family's supports predicate declares its
                // own constraints (B-stationary-only, unroll=1-only, ...).
                // This keeps mixed ablations (e.g. dataflows x several
                // algorithms) expressible without aborting the sweep.
                if (!AlgorithmRegistry::instance().by_algorithm(alg).supports(df, unroll))
                  continue;
                SweepPoint p;
                p.suite = s.name;
                p.workload = w.name;
                p.count = w.count;
                p.dims = w.dims;
                p.sp = sp;
                p.config.algorithm = alg;
                p.config.kernel.unroll = unroll;
                p.config.kernel.dataflow = df;
                p.config.tile_rows = tile;
                p.config.engine = spec.engine;
                p.mode = spec.mode;
                out.push_back(std::move(p));
              }
  }
  IMAC_CHECK(!out.empty(), "sweep spec expands to zero supported points");
  return out;
}

BatchJob point_job(const SweepSpec& spec, const SweepPoint& p) {
  if (spec.mode == SweepMode::kExact) {
    BatchJob job;
    job.mode = BatchJob::Mode::kExact;
    job.dims = p.dims;
    job.sp = p.sp;
    job.config = p.config;
    job.processor = spec.processor;
    job.seed = spec.seed;
    return job;
  }
  return sampled_job(p.dims, p.sp, p.config, spec.processor, spec.sample);
}

std::vector<std::string> grid_keys(const SweepSpec& spec, const std::vector<SweepPoint>& points) {
  std::vector<std::string> keys;
  keys.reserve(points.size());
  for (const SweepPoint& p : points) keys.push_back(p.cache_key(spec));
  return keys;
}

std::uint64_t grid_hash(const std::vector<std::string>& keys) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const std::string& key : keys) hash = fnv1a(key, hash);
  return hash;
}

// --- cache ----------------------------------------------------------------

const BatchResult* SweepCache::find(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = results_.find(key);
  if (it == results_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return &it->second;
}

void SweepCache::insert(const std::string& key, const BatchResult& result) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Journal before memoizing: if the append (or a drift cross-check in
  // ResultStore::put) fails, the cache must not claim a result the store
  // never accepted.
  if (store_ != nullptr) store_->put(key, StoredResult{result.cycles, result.data_accesses});
  results_.emplace(key, result);
}

void SweepCache::attach_store(ResultStore& store, bool preload) {
  std::lock_guard<std::mutex> lock(mutex_);
  IMAC_CHECK(store_ == nullptr || store_ == &store, "SweepCache: a different store is attached");
  store_ = &store;
  if (!preload) return;
  for (const auto& [key, stored] : store.results()) {
    BatchResult result;
    result.cycles = stored.cycles;
    result.data_accesses = stored.data_accesses;
    if (results_.emplace(key, result).second) ++store_loads_;
  }
}

std::size_t SweepCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return results_.size();
}

// --- execution ------------------------------------------------------------

SweepReport run_sweep(const SweepSpec& spec, BatchRunner& runner, SweepCache* cache) {
  return run_sweep(spec, expand_sweep(spec), runner, cache);
}

SweepReport run_sweep(const SweepSpec& spec, const std::vector<SweepPoint>& points,
                      BatchRunner& runner, SweepCache* cache, const std::atomic<bool>* cancel) {
  SweepReport report;
  report.spec_name = spec.name;

  // One job per unique cache key; duplicate points (identical shapes under
  // a different workload name, repeated grid cells) share the measurement.
  std::vector<std::string> keys;
  keys.reserve(points.size());
  std::unordered_map<std::string, std::size_t> job_of_key;
  std::vector<BatchJob> jobs;
  std::vector<std::string> job_keys;
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const SweepPoint& p : points) {
    keys.push_back(p.cache_key(spec));
    hash = fnv1a(keys.back(), hash);
    const std::string& key = keys.back();
    if (job_of_key.count(key) != 0) continue;
    if (cache != nullptr && cache->find(key) != nullptr) continue;
    job_of_key.emplace(key, jobs.size());
    jobs.push_back(point_job(spec, p));
    job_keys.push_back(key);
  }
  report.spec_hash = hash;

  // Results enter the cache (and, through an attached store, the on-disk
  // journal) from the worker threads the moment each measurement finishes,
  // not after the whole batch: a sweep killed mid-run keeps everything
  // measured so far for --resume. (SweepCache and ResultStore are both
  // thread-safe, as run_batch's completion callback requires.)
  const std::vector<BatchResult> results = run_batch(
      runner, jobs,
      [&](std::size_t i, const BatchResult& r) {
        if (cache != nullptr) cache->insert(job_keys[i], r);
      },
      cancel);

  report.rows.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    SweepRow row;
    row.point = points[i];
    const BatchResult* r = nullptr;
    if (const auto it = job_of_key.find(keys[i]); it != job_of_key.end()) {
      r = &results[it->second];
    } else {
      IMAC_ASSERT(cache != nullptr, "sweep row neither measured nor cached");
      r = cache->find(keys[i]);
      IMAC_ASSERT(r != nullptr, "sweep cache lost a result mid-sweep");
    }
    row.cycles = r->cycles;
    row.data_accesses = r->data_accesses;
    report.rows.push_back(std::move(row));
  }
  return report;
}

SweepReport run_sweep(const SweepSpec& spec, unsigned threads, SweepCache* cache) {
  BatchRunner runner(threads);
  return run_sweep(spec, runner, cache);
}

// --- sharding and merging -------------------------------------------------

ShardSpec parse_shard(const std::string& text) {
  const std::size_t slash = text.find('/');
  const auto all_digits = [](const std::string& s) {
    if (s.empty()) return false;
    for (const char c : s)
      if (c < '0' || c > '9') return false;
    return true;
  };
  const std::string index_part = text.substr(0, slash);
  const std::string count_part = slash == std::string::npos ? "" : text.substr(slash + 1);
  IMAC_CHECK(slash != std::string::npos && all_digits(index_part) && all_digits(count_part) &&
                 index_part.size() <= 4 && count_part.size() <= 4,
             "shard must be \"i/N\" with 1 <= i <= N <= 4096, got \"" + text + "\"");
  ShardSpec shard;
  shard.index = static_cast<unsigned>(std::stoul(index_part));
  shard.count = static_cast<unsigned>(std::stoul(count_part));
  IMAC_CHECK(shard.index >= 1 && shard.index <= shard.count && shard.count <= 4096,
             "shard must be \"i/N\" with 1 <= i <= N <= 4096, got \"" + text + "\"");
  return shard;
}

bool shard_owns(const ShardSpec& shard, const std::string& cache_key) {
  return fnv1a(cache_key) % shard.count == shard.index - 1;
}

std::vector<SweepPoint> filter_shard(const SweepSpec& spec, const std::vector<SweepPoint>& points,
                                     const ShardSpec& shard) {
  std::vector<SweepPoint> out;
  for (const SweepPoint& p : points)
    if (shard_owns(shard, p.cache_key(spec))) out.push_back(p);
  return out;
}

namespace {

void merge_result(const std::string& key, const StoredResult& result, const char* origin,
                  std::map<std::string, StoredResult>& merged) {
  const auto [it, inserted] = merged.emplace(key, result);
  IMAC_CHECK(inserted || it->second == result,
             std::string("merge: ") + origin + " disagrees with an earlier shard about \"" + key +
                 "\" (refusing a silently wrong merge)");
}

}  // namespace

void accumulate_results(const SweepSpec& spec, const SweepReport& shard,
                        std::map<std::string, StoredResult>& merged) {
  for (const SweepRow& row : shard.rows)
    merge_result(row.point.cache_key(spec), StoredResult{row.cycles, row.data_accesses},
                 "shard report", merged);
}

void accumulate_results(const ResultStore& store, std::map<std::string, StoredResult>& merged) {
  for (const auto& [key, result] : store.results())
    merge_result(key, result, "shard store", merged);
}

SweepReport assemble_report(const SweepSpec& spec,
                            const std::map<std::string, StoredResult>& merged) {
  SweepReport report;
  report.spec_name = spec.name;
  std::uint64_t hash = 0xcbf29ce484222325ull;
  const std::vector<SweepPoint> points = expand_sweep(spec);
  report.rows.reserve(points.size());
  for (const SweepPoint& p : points) {
    const std::string key = p.cache_key(spec);
    hash = fnv1a(key, hash);
    const auto it = merged.find(key);
    IMAC_CHECK(it != merged.end(), "merge: shards do not cover the full grid; first missing "
                                   "point is " + p.workload + " \"" + key + "\"");
    SweepRow row;
    row.point = p;
    row.cycles = it->second.cycles;
    row.data_accesses = it->second.data_accesses;
    report.rows.push_back(std::move(row));
  }
  report.spec_hash = hash;
  return report;
}

// --- reports --------------------------------------------------------------

namespace {

constexpr const char* kCsvHeader =
    "suite,workload,count,rows,k,cols,sparsity,algorithm,dataflow,unroll,tile_rows,mode,"
    "cycles,data_accesses";

std::string cycles_field(const SweepRow& row) {
  if (row.point.mode == SweepMode::kExact)
    return std::to_string(static_cast<std::uint64_t>(row.cycles));
  return fmt_fixed(row.cycles, 2);
}

std::vector<std::string> split(const std::string& line, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (;;) {
    const std::size_t pos = line.find(sep, start);
    out.push_back(line.substr(start, pos - start));
    if (pos == std::string::npos) return out;
    start = pos + 1;
  }
}

std::uint64_t parse_u64(const std::string& s, const char* what) {
  IMAC_CHECK(!s.empty(), std::string("csv report: empty ") + what);
  std::uint64_t v = 0;
  for (const char c : s) {
    IMAC_CHECK(c >= '0' && c <= '9', std::string("csv report: bad ") + what + " \"" + s + "\"");
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return v;
}

/// Defensive hex parse for the header hash: report_to_csv always emits 16
/// hex digits, so anything else (truncation, editor damage) is malformed
/// input and must raise SimError like every other bad field — never an
/// uncaught std::invalid_argument/out_of_range from std::stoull.
std::uint64_t parse_hash(const std::string& s) {
  IMAC_CHECK(!s.empty() && s.size() <= 16, "csv report: bad spec hash \"" + s + "\"");
  std::uint64_t v = 0;
  for (const char c : s) {
    unsigned digit = 0;
    if (c >= '0' && c <= '9') digit = static_cast<unsigned>(c - '0');
    else if (c >= 'a' && c <= 'f') digit = static_cast<unsigned>(c - 'a') + 10;
    else if (c >= 'A' && c <= 'F') digit = static_cast<unsigned>(c - 'A') + 10;
    else raise("csv report: bad spec hash \"" + s + "\"");
    v = (v << 4) | digit;
  }
  return v;
}

}  // namespace

std::string report_to_csv(const SweepReport& report) {
  char hash[24];
  std::snprintf(hash, sizeof hash, "%016llx", static_cast<unsigned long long>(report.spec_hash));
  std::string out = "# indexmac sweep: spec=" + report.spec_name + " hash=" + hash + "\n";
  out += kCsvHeader;
  out += '\n';
  for (const SweepRow& row : report.rows) {
    const SweepPoint& p = row.point;
    out += p.suite + "," + p.workload + "," + std::to_string(p.count) + "," +
           std::to_string(p.dims.rows_a) + "," + std::to_string(p.dims.k) + "," +
           std::to_string(p.dims.cols_b) + "," + sparsity_label(p.sp) + "," +
           algorithm_id(p.config.algorithm) + "," + dataflow_id(p.config.kernel.dataflow) + "," +
           std::to_string(p.config.kernel.unroll) + "," + std::to_string(p.config.tile_rows) +
           "," + sweep_mode_name(p.mode) + "," + cycles_field(row) + "," +
           std::to_string(row.data_accesses) + "\n";
  }
  return out;
}

JsonValue report_json_doc(const SweepReport& report) {
  JsonValue doc = JsonValue::make_object();
  doc.set("spec", JsonValue(report.spec_name));
  char hash[24];
  std::snprintf(hash, sizeof hash, "%016llx", static_cast<unsigned long long>(report.spec_hash));
  doc.set("hash", JsonValue(std::string(hash)));
  JsonValue rows = JsonValue::make_array();
  for (const SweepRow& row : report.rows) {
    const SweepPoint& p = row.point;
    JsonValue r = JsonValue::make_object();
    r.set("suite", JsonValue(p.suite));
    r.set("workload", JsonValue(p.workload));
    r.set("count", JsonValue(static_cast<double>(p.count)));
    r.set("rows", JsonValue(static_cast<double>(p.dims.rows_a)));
    r.set("k", JsonValue(static_cast<double>(p.dims.k)));
    r.set("cols", JsonValue(static_cast<double>(p.dims.cols_b)));
    r.set("sparsity", JsonValue(sparsity_label(p.sp)));
    r.set("algorithm", JsonValue(std::string(algorithm_id(p.config.algorithm))));
    r.set("dataflow", JsonValue(std::string(dataflow_id(p.config.kernel.dataflow))));
    r.set("unroll", JsonValue(static_cast<double>(p.config.kernel.unroll)));
    r.set("tile_rows", JsonValue(static_cast<double>(p.config.tile_rows)));
    r.set("mode", JsonValue(std::string(sweep_mode_name(p.mode))));
    r.set("cycles", JsonValue(row.cycles));
    r.set("data_accesses", JsonValue(static_cast<double>(row.data_accesses)));
    rows.push_back(std::move(r));
  }
  doc.set("rows", std::move(rows));
  return doc;
}

std::string report_to_json(const SweepReport& report) {
  return report_json_doc(report).dump() + "\n";
}

SweepReport parse_csv_report(const std::string& csv) {
  SweepReport report;
  bool saw_header = false;
  std::size_t start = 0;
  while (start < csv.size()) {
    std::size_t end = csv.find('\n', start);
    if (end == std::string::npos) end = csv.size();
    const std::string line = csv.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    if (line[0] == '#') {
      // A "# rollup" marker ends the point data: everything after it is
      // derived network totals (core/rollup.h), re-computable from the
      // rows above and deliberately not round-tripped.
      if (line.rfind("# rollup", 0) == 0) break;
      const std::size_t spec_at = line.find("spec=");
      if (spec_at != std::string::npos) {
        const std::size_t sp_end = line.find(' ', spec_at);
        report.spec_name = line.substr(spec_at + 5, sp_end - spec_at - 5);
      }
      const std::size_t hash_at = line.find("hash=");
      if (hash_at != std::string::npos) report.spec_hash = parse_hash(line.substr(hash_at + 5));
      continue;
    }
    if (!saw_header) {
      IMAC_CHECK(line == kCsvHeader, "csv report: unexpected header \"" + line + "\"");
      saw_header = true;
      continue;
    }
    const std::vector<std::string> f = split(line, ',');
    IMAC_CHECK(f.size() == 14, "csv report: expected 14 fields, got " +
                                   std::to_string(f.size()) + " in \"" + line + "\"");
    SweepRow row;
    row.point.suite = f[0];
    row.point.workload = f[1];
    row.point.count = static_cast<unsigned>(parse_u64(f[2], "count"));
    row.point.dims = {parse_u64(f[3], "rows"), parse_u64(f[4], "k"), parse_u64(f[5], "cols")};
    row.point.sp = parse_sparsity(f[6]);
    row.point.config.algorithm = parse_algorithm(f[7]);
    row.point.config.kernel.dataflow = parse_dataflow(f[8]);
    row.point.config.kernel.unroll = static_cast<unsigned>(parse_u64(f[9], "unroll"));
    row.point.config.tile_rows = static_cast<unsigned>(parse_u64(f[10], "tile_rows"));
    row.point.mode = parse_mode(f[11]);
    // parse_double (std::from_chars) is locale-independent; std::stod here
    // would mis-read "123.45" as 123 under a comma-decimal LC_NUMERIC and
    // silently corrupt every sampled-mode row.
    row.cycles = parse_double(f[12], "csv report cycles");
    row.data_accesses = parse_u64(f[13], "data_accesses");
    report.rows.push_back(std::move(row));
  }
  IMAC_CHECK(saw_header, "csv report: missing header row");
  return report;
}

}  // namespace indexmac::core
