#include "core/rollup.h"

#include <cstdio>

#include "common/error.h"
#include "common/format.h"
#include "core/algorithm_registry.h"

namespace indexmac::core {
namespace {

using workloads::sparsity_label;

const char* dataflow_id(kernels::Dataflow d) {
  switch (d) {
    case kernels::Dataflow::kAStationary: return "a";
    case kernels::Dataflow::kBStationary: return "b";
    case kernels::Dataflow::kCStationary: return "c";
  }
  raise("unknown dataflow");
}

bool same_group(const RollupRow& g, const SweepPoint& p) {
  return g.suite == p.suite && g.sp.n == p.sp.n && g.sp.m == p.sp.m &&
         g.algorithm == p.config.algorithm && g.dataflow == p.config.kernel.dataflow &&
         g.unroll == p.config.kernel.unroll && g.tile_rows == p.config.tile_rows &&
         g.mode == p.mode;
}

/// Weighted network cycles, formatted like the per-point cycles column:
/// exact-mode totals are exact integers, sampled totals keep 2 decimals.
std::string cycles_field(const RollupRow& row) {
  if (row.mode == SweepMode::kExact)
    return std::to_string(static_cast<std::uint64_t>(row.cycles));
  return fmt_fixed(row.cycles, 2);
}

}  // namespace

RollupReport compute_rollup(const SweepReport& report) {
  RollupReport out;
  out.spec_name = report.spec_name;
  out.spec_hash = report.spec_hash;
  for (const SweepRow& row : report.rows) {
    const SweepPoint& p = row.point;
    RollupRow* group = nullptr;
    for (RollupRow& g : out.rows)
      if (same_group(g, p)) {
        group = &g;
        break;
      }
    if (group == nullptr) {
      RollupRow g;
      g.suite = p.suite;
      g.sp = p.sp;
      g.algorithm = p.config.algorithm;
      g.dataflow = p.config.kernel.dataflow;
      g.unroll = p.config.kernel.unroll;
      g.tile_rows = p.config.tile_rows;
      g.mode = p.mode;
      out.rows.push_back(std::move(g));
      group = &out.rows.back();
    }
    group->layers += p.count;
    group->workloads += 1;
    group->cycles += row.cycles * p.count;
    group->data_accesses += row.data_accesses * p.count;
  }
  return out;
}

std::string rollup_to_csv(const RollupReport& rollup) {
  char hash[24];
  std::snprintf(hash, sizeof hash, "%016llx", static_cast<unsigned long long>(rollup.spec_hash));
  std::string out = std::string(kRollupMarkerPrefix) + ": spec=" + rollup.spec_name +
                    " hash=" + hash + "\n";
  out +=
      "suite,sparsity,algorithm,dataflow,unroll,tile_rows,mode,layers,workloads,"
      "cycles,data_accesses,energy_proxy_bytes\n";
  for (const RollupRow& row : rollup.rows) {
    out += row.suite + "," + sparsity_label(row.sp) + "," +
           AlgorithmRegistry::instance().by_algorithm(row.algorithm).id + "," +
           dataflow_id(row.dataflow) + "," + std::to_string(row.unroll) + "," +
           std::to_string(row.tile_rows) + "," + sweep_mode_name(row.mode) + "," +
           std::to_string(row.layers) + "," + std::to_string(row.workloads) + "," +
           cycles_field(row) + "," + std::to_string(row.data_accesses) + "," +
           std::to_string(row.energy_proxy_bytes()) + "\n";
  }
  return out;
}

JsonValue rollup_to_json(const RollupReport& rollup) {
  JsonValue rows = JsonValue::make_array();
  for (const RollupRow& row : rollup.rows) {
    JsonValue r = JsonValue::make_object();
    r.set("suite", JsonValue(row.suite));
    r.set("sparsity", JsonValue(sparsity_label(row.sp)));
    r.set("algorithm",
          JsonValue(AlgorithmRegistry::instance().by_algorithm(row.algorithm).id));
    r.set("dataflow", JsonValue(std::string(dataflow_id(row.dataflow))));
    r.set("unroll", JsonValue(static_cast<double>(row.unroll)));
    r.set("tile_rows", JsonValue(static_cast<double>(row.tile_rows)));
    r.set("mode", JsonValue(std::string(sweep_mode_name(row.mode))));
    r.set("layers", JsonValue(static_cast<double>(row.layers)));
    r.set("workloads", JsonValue(static_cast<double>(row.workloads)));
    r.set("cycles", JsonValue(row.cycles));
    r.set("data_accesses", JsonValue(static_cast<double>(row.data_accesses)));
    r.set("energy_proxy_bytes", JsonValue(static_cast<double>(row.energy_proxy_bytes())));
    rows.push_back(std::move(r));
  }
  return rows;
}

std::string report_to_json_with_rollup(const SweepReport& report, const RollupReport& rollup) {
  JsonValue doc = report_json_doc(report);
  doc.set("rollup", rollup_to_json(rollup));
  return doc.dump() + "\n";
}

}  // namespace indexmac::core
