// Algorithm 1 (dense row-wise): the dense baseline. Ignores sparsity — A
// is placed dense, so it has no sparse packing, no analytic footprint
// model and exists only at unroll 1, B-stationary.
#include "core/algorithms/descriptors.h"
#include "kernels/kernels.h"

namespace indexmac::core::algorithms {

AlgorithmDescriptor dense_descriptor() {
  AlgorithmDescriptor d;
  d.algorithm = Algorithm::kDenseRowwise;
  d.id = "dense";
  d.display_name = "Dense row-wise";
  d.description = "Algorithm 1: dense row-wise baseline (ignores sparsity)";
  d.pairing = PairingRole::kStandalone;
  d.supports_sampled = false;
  d.dense_operands = true;
  d.supports = [](kernels::Dataflow df, unsigned unroll) {
    return df == kernels::Dataflow::kBStationary && unroll == 1;
  };
  d.emit = [](const AlgorithmDescriptor::EmitContext& ctx) {
    return kernels::emit_dense_rowwise_kernel(ctx.layout, ctx.dense_a_base,
                                              ctx.dense_a_pitch_elems, ctx.options);
  };
  return d;
}

}  // namespace indexmac::core::algorithms
