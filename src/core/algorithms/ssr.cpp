// Algorithm 5 (SSR streaming baseline, after arXiv:2305.05559 /
// arXiv:2011.08070): the A value/index streams bypass the vector register
// file through two SSR address generators, and vindexmacs.v pops both
// operands per MAC. Packs A like Algorithm 3 (VRF indices into the
// preloaded B tile), so accumulation order — and therefore every result
// bit — matches Algorithm 3. B-stationary and unroll=1 only: the streams
// deliver A in strict [ktile][row][slot] order, which an interleaved row
// group would consume out of order.
#include "core/algorithms/descriptors.h"
#include "kernels/kernels.h"

namespace indexmac::core::algorithms {

AlgorithmDescriptor ssr_descriptor() {
  AlgorithmDescriptor d;
  d.algorithm = Algorithm::kSsr;
  d.id = "ssr";
  d.display_name = "SSR streaming (vindexmacs)";
  d.description = "Algorithm 5: SSR-streamed A operands + vindexmacs MACs";
  d.pairing = PairingRole::kStandalone;
  d.supports_sampled = true;
  d.index_mode = sparse::IndexMode::kVrfIndex;
  d.supports = [](kernels::Dataflow df, unsigned unroll) {
    return df == kernels::Dataflow::kBStationary && unroll == 1;
  };
  d.emit = [](const AlgorithmDescriptor::EmitContext& ctx) {
    return kernels::emit_algorithm_ssr(ctx.layout, ctx.options);
  };
  d.footprint = kernels::predict_ssr_footprint;
  return d;
}

}  // namespace indexmac::core::algorithms
