// Algorithm 4 (follow-up paper, arXiv:2501.10189): packed 64-bit nibble
// index words + dual-row vindexmac2 MACs. B-stationary by construction.
#include "core/algorithms/descriptors.h"
#include "kernels/kernels.h"

namespace indexmac::core::algorithms {

AlgorithmDescriptor indexmac4_descriptor() {
  AlgorithmDescriptor d;
  d.algorithm = Algorithm::kIndexmac4;
  d.id = "indexmac4";
  d.display_name = "Proposed-v2 (packed/dual vindexmac)";
  d.description = "Algorithm 4: packed nibble indices + dual-row vindexmac2 MACs";
  d.pairing = PairingRole::kProposedV2;
  d.supports_sampled = true;
  d.index_mode = sparse::IndexMode::kPackedNibble;
  d.supports = [](kernels::Dataflow df, unsigned) {
    return df == kernels::Dataflow::kBStationary;
  };
  d.emit = [](const AlgorithmDescriptor::EmitContext& ctx) {
    return kernels::emit_algorithm4(ctx.layout, ctx.options);
  };
  d.footprint = kernels::predict_algorithm4_footprint;
  return d;
}

}  // namespace indexmac::core::algorithms
