// Algorithm 2 ("Row-Wise-SpMM"): the paper's vectorized software baseline.
// The only family with a free dataflow axis (A-, B- or C-stationary).
#include "core/algorithms/descriptors.h"
#include "kernels/kernels.h"

namespace indexmac::core::algorithms {

AlgorithmDescriptor rowwise_descriptor() {
  AlgorithmDescriptor d;
  d.algorithm = Algorithm::kRowwiseSpmm;
  d.id = "rowwise";
  d.display_name = "Row-Wise-SpMM";
  d.description = "Algorithm 2: per non-zero, load the B row (vle32) and vfmacc";
  d.pairing = PairingRole::kBaseline;
  d.supports_sampled = true;
  d.index_mode = sparse::IndexMode::kByteOffset;
  d.supports = [](kernels::Dataflow, unsigned) { return true; };
  d.emit = [](const AlgorithmDescriptor::EmitContext& ctx) {
    return kernels::emit_rowwise_spmm_kernel(ctx.layout, ctx.options);
  };
  d.footprint = kernels::predict_rowwise_footprint;
  return d;
}

}  // namespace indexmac::core::algorithms
