// Factory declarations for the built-in kernel-family descriptors, one TU
// per family under core/algorithms/. AlgorithmRegistry::instance() calls
// these in its fixed registration order; nothing else should.
#pragma once

#include "core/algorithm_registry.h"

namespace indexmac::core::algorithms {

[[nodiscard]] AlgorithmDescriptor rowwise_descriptor();    ///< Algorithm 2
[[nodiscard]] AlgorithmDescriptor indexmac_descriptor();   ///< Algorithm 3
[[nodiscard]] AlgorithmDescriptor indexmac4_descriptor();  ///< Algorithm 4
[[nodiscard]] AlgorithmDescriptor dense_descriptor();      ///< Algorithm 1
[[nodiscard]] AlgorithmDescriptor ssr_descriptor();        ///< Algorithm 5

}  // namespace indexmac::core::algorithms
