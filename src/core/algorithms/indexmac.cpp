// Algorithm 3 ("Proposed"): preloaded B tiles + the custom vindexmac
// instruction's indirect VRF read. B-stationary by construction.
#include "core/algorithms/descriptors.h"
#include "kernels/kernels.h"

namespace indexmac::core::algorithms {

AlgorithmDescriptor indexmac_descriptor() {
  AlgorithmDescriptor d;
  d.algorithm = Algorithm::kIndexmac;
  d.id = "indexmac";
  d.display_name = "Proposed (vindexmac)";
  d.description = "Algorithm 3: preloaded B tile + indirect-VRF vindexmac MACs";
  d.pairing = PairingRole::kProposed;
  d.supports_sampled = true;
  d.index_mode = sparse::IndexMode::kVrfIndex;
  d.supports = [](kernels::Dataflow df, unsigned) {
    return df == kernels::Dataflow::kBStationary;
  };
  d.emit = [](const AlgorithmDescriptor::EmitContext& ctx) {
    return kernels::emit_indexmac_kernel(ctx.layout, ctx.options);
  };
  d.footprint = kernels::predict_indexmac_footprint;
  return d;
}

}  // namespace indexmac::core::algorithms
