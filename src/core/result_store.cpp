#include "core/result_store.h"

#include <cstring>
#include <filesystem>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "common/bitutil.h"
#include "common/error.h"

namespace indexmac::core {
namespace {

constexpr char kMagic[8] = {'I', 'M', 'A', 'C', 'R', 'E', 'S', '\n'};
constexpr std::uint32_t kFormatVersion = 1;
constexpr std::size_t kHeaderBytes = sizeof kMagic + 4;
/// A record longer than this is certainly a corrupt length field, not a
/// cache key (keys are ~100 bytes); bounds the replay allocation.
constexpr std::uint32_t kMaxPayloadBytes = 1u << 20;

// --- little-endian scalar packing (journals must be portable) -------------

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t double_bits(double d) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof bits);
  return bits;
}

double bits_double(std::uint64_t bits) {
  double d = 0;
  std::memcpy(&d, &bits, sizeof d);
  return d;
}

std::string encode_record(const std::string& key, const StoredResult& r) {
  std::string payload;
  payload.reserve(4 + key.size() + 16);
  put_u32(payload, static_cast<std::uint32_t>(key.size()));
  payload += key;
  put_u64(payload, double_bits(r.cycles));
  put_u64(payload, r.data_accesses);

  std::string record;
  record.reserve(8 + payload.size());
  put_u32(record, static_cast<std::uint32_t>(payload.size()));
  put_u32(record, crc32(payload.data(), payload.size()));
  record += payload;
  return record;
}

/// fsync the buffered FILE: flush libc buffers, then push the kernel page
/// cache to stable storage. No-op beyond fflush on platforms without
/// fsync (the kFlush guarantee still holds there).
bool flush_to_disk(std::FILE* file) {
  if (std::fflush(file) != 0) return false;
#if defined(__unix__) || defined(__APPLE__)
  return ::fsync(::fileno(file)) == 0;
#else
  return true;
#endif
}

}  // namespace

ResultStore::ResultStore(const std::string& dir, Durability durability)
    : durability_(durability) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  IMAC_CHECK(!ec && std::filesystem::is_directory(dir),
             "result store: cannot create directory " + dir);
  path_ = (std::filesystem::path(dir) / kJournalName).string();
  replay_journal();
  file_ = std::fopen(path_.c_str(), "ab");
  IMAC_CHECK(file_ != nullptr, "result store: cannot open " + path_ + " for append");
}

ResultStore::~ResultStore() {
  if (file_ != nullptr) std::fclose(file_);
}

void ResultStore::replay_journal() {
  const auto write_fresh_header = [this] {
    std::FILE* out = std::fopen(path_.c_str(), "wb");
    IMAC_CHECK(out != nullptr, "result store: cannot create " + path_);
    std::string header(kMagic, sizeof kMagic);
    put_u32(header, kFormatVersion);
    const bool ok = std::fwrite(header.data(), 1, header.size(), out) == header.size();
    std::fclose(out);
    IMAC_CHECK(ok, "result store: cannot write header of " + path_);
  };

  std::FILE* in = std::fopen(path_.c_str(), "rb");
  if (in == nullptr) {
    // New journal: write the header so even an empty store identifies its
    // format version.
    write_fresh_header();
    return;
  }

  // Read the whole journal; stores are metric-sized (bytes per simulated
  // point), never bulk data.
  std::vector<unsigned char> bytes;
  std::fseek(in, 0, SEEK_END);
  const long file_size = std::ftell(in);
  std::fseek(in, 0, SEEK_SET);
  bytes.resize(file_size > 0 ? static_cast<std::size_t>(file_size) : 0);
  if (!bytes.empty() && std::fread(bytes.data(), 1, bytes.size(), in) != bytes.size()) {
    std::fclose(in);
    raise("result store: cannot read " + path_);
  }
  std::fclose(in);

  std::string full_header(kMagic, sizeof kMagic);
  put_u32(full_header, kFormatVersion);
  if (bytes.size() < kHeaderBytes) {
    // Zero bytes, or a strict prefix of our own header: a crash (or full
    // disk) during the store's own initial header write — the one
    // truncation the store itself can cause. Recover by rewriting; any
    // other short content is a foreign file and must not be clobbered.
    IMAC_CHECK(bytes.empty() ||
                   std::memcmp(bytes.data(), full_header.data(), bytes.size()) == 0,
               "result store: " + path_ + " is not a result-store journal");
    write_fresh_header();
    return;
  }

  IMAC_CHECK(std::memcmp(bytes.data(), kMagic, sizeof kMagic) == 0,
             "result store: " + path_ + " is not a result-store journal");
  const std::uint32_t version = get_u32(bytes.data() + sizeof kMagic);
  IMAC_CHECK(version == kFormatVersion,
             "result store: " + path_ + " has unsupported format version " +
                 std::to_string(version) + " (expected " + std::to_string(kFormatVersion) + ")");

  // Replay records until clean EOF or the first truncated/corrupt record;
  // everything after a bad record is untrusted (its length field may be
  // garbage), so recovery keeps the valid prefix only.
  std::size_t pos = kHeaderBytes;
  std::size_t valid_end = pos;
  while (pos < bytes.size()) {
    if (bytes.size() - pos < 8) break;  // truncated record framing
    const std::uint32_t payload_len = get_u32(bytes.data() + pos);
    const std::uint32_t stored_crc = get_u32(bytes.data() + pos + 4);
    if (payload_len < 4 + 16 || payload_len > kMaxPayloadBytes) break;  // corrupt length
    if (bytes.size() - pos - 8 < payload_len) break;                    // truncated payload
    const unsigned char* payload = bytes.data() + pos + 8;
    if (crc32(payload, payload_len) != stored_crc) break;  // corrupt payload
    const std::uint32_t key_len = get_u32(payload);
    if (key_len != payload_len - 4 - 16) break;  // framing disagrees with itself
    std::string key(reinterpret_cast<const char*>(payload + 4), key_len);
    StoredResult result;
    result.cycles = bits_double(get_u64(payload + 4 + key_len));
    result.data_accesses = get_u64(payload + 4 + key_len + 8);

    const auto it = results_.find(key);
    IMAC_CHECK(it == results_.end() || it->second == result,
               "result store: " + path_ + " journals two different results for key \"" + key +
                   "\" (refusing a silently wrong merge)");
    if (it == results_.end()) {
      results_.emplace(std::move(key), result);
      ++loaded_;
    }
    pos += 8 + payload_len;
    valid_end = pos;
  }

  if (valid_end < bytes.size()) {
    // Crash-recovery path: discard the truncated/corrupt tail so future
    // appends extend a well-formed journal.
    dropped_bytes_ = bytes.size() - valid_end;
    std::error_code ec;
    std::filesystem::resize_file(path_, valid_end, ec);
    IMAC_CHECK(!ec, "result store: cannot truncate corrupt tail of " + path_);
  }
}

const StoredResult* ResultStore::find(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = results_.find(key);
  return it == results_.end() ? nullptr : &it->second;
}

void ResultStore::put(const std::string& key, const StoredResult& result) {
  IMAC_CHECK(!key.empty(), "result store: empty key");
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = results_.find(key);
  if (it != results_.end()) {
    IMAC_CHECK(it->second == result,
               "result store: measurement for key \"" + key +
                   "\" disagrees with the journaled result (timing model drifted under " + path_ +
                   "; use a fresh --store directory)");
    return;  // identical re-put: nothing to journal
  }
  const std::string record = encode_record(key, result);
  bool ok = std::fwrite(record.data(), 1, record.size(), file_) == record.size();
  // The durability levels documented in the header: kFlush hands the
  // record to the kernel (survives process death); kFsyncEach walks it all
  // the way to stable storage before put() returns (survives power loss).
  if (ok)
    ok = durability_ == Durability::kFsyncEach ? flush_to_disk(file_) : std::fflush(file_) == 0;
  IMAC_CHECK(ok, "result store: append to " + path_ + " failed");
  results_.emplace(key, result);
  ++appended_;
}

void ResultStore::sync() {
  std::lock_guard<std::mutex> lock(mutex_);
  IMAC_CHECK(flush_to_disk(file_), "result store: fsync of " + path_ + " failed");
}

std::size_t ResultStore::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return results_.size();
}

std::uint64_t ResultStore::appended() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return appended_;
}

}  // namespace indexmac::core
