// Persistent sweep-result store: an append-only on-disk journal of
// completed measurements (canonical cache key -> headline metrics) that
// survives process death, so repeated, resumed, and sharded sweeps are
// served from disk instead of re-simulated.
//
// The normative spec of the journal format also lives in
// docs/formats.md ("Result-store journal"); keep the two in sync.
//
// On-disk format (DIR/results.journal, little-endian):
//
//   header   8-byte magic "IMACRES\n" | u32 format version (currently 1)
//   record*  u32 payload_len | u32 crc32(payload) | payload
//   payload  u32 key_len | key bytes | u64 cycles (IEEE-754 bits) |
//            u64 data_accesses
//
// Every put() appends one record and flushes, so a killed sweep leaves at
// worst a truncated final record. Opening a store recovers the longest
// valid record prefix: a truncated or CRC-failing tail is discarded and
// the file truncated back to the last good record (nothing after a corrupt
// record can be trusted — lengths themselves may be garbage). A bad header
// is not recoverable and raises SimError, as does a journal that asserts
// two different results for the same key (no silent wrong merges).
//
// Durability levels (chosen at open time; see Durability):
//
//   kFlush (default)  put() returns after fwrite + fflush: the record is
//                     in the kernel page cache. Survives any death of THIS
//                     PROCESS (kill -9, abort, crash) because the OS owns
//                     the bytes — but NOT an OS crash or power loss, which
//                     can lose any number of recent records (recovery then
//                     still yields a valid prefix, just a shorter one).
//   kFsyncEach        put() additionally fsync()s the journal before
//                     returning: once put() (and therefore any lease ack
//                     the orchestrator sends after it) completes, the
//                     record survives power loss and host crashes. Costs
//                     one disk flush per record; opt in for runs whose
//                     points are expensive relative to an fsync.
//
//   sync() offers the intermediate point regardless of level: callers that
//   batch cheap points under kFlush can fsync at their own barriers
//   (shutdown, final report) without paying per-record latency.
//
// One store = one writer process. Shards must use separate stores (one per
// shard) and be fused with merge tooling; see core/sweep.h.
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>

namespace indexmac::core {

/// The journaled metrics of one measurement — exactly the fields a sweep
/// report row consumes. (Full TimingStats are deliberately not persisted:
/// reports never read them, and the journal stays format-stable.)
struct StoredResult {
  double cycles = 0;
  std::uint64_t data_accesses = 0;

  [[nodiscard]] bool operator==(const StoredResult& o) const {
    return cycles == o.cycles && data_accesses == o.data_accesses;
  }
};

/// Crash-persistence guarantee of each appended record; see the header
/// comment for the exact contract of each level.
enum class Durability {
  kFlush,      ///< fflush per record: survives process death only
  kFsyncEach,  ///< + fsync per record: survives power loss / host crash
};

/// An open result store rooted at a directory. Thread-safe; find() and
/// put() may race from BatchRunner result collection.
class ResultStore {
 public:
  /// Opens (or creates) DIR and DIR/results.journal, replaying every valid
  /// record. Throws SimError when the directory cannot be created, the
  /// journal has a foreign magic/version, or replay finds conflicting
  /// records for one key. A truncated/corrupt tail is recovered by
  /// truncation (see dropped_bytes()).
  explicit ResultStore(const std::string& dir, Durability durability = Durability::kFlush);
  ~ResultStore();

  ResultStore(const ResultStore&) = delete;
  ResultStore& operator=(const ResultStore&) = delete;

  /// Returns the stored metrics for `key`, or nullptr.
  [[nodiscard]] const StoredResult* find(const std::string& key) const;

  /// Journals one completed measurement. Re-putting an identical result is
  /// a no-op; a *different* result for a known key throws SimError (the
  /// timing model drifted under the store — delete the store directory or
  /// point the sweep at a fresh one).
  void put(const std::string& key, const StoredResult& result);

  /// All stored results, for merge tooling. Not synchronized against
  /// concurrent put(); call only when no sweep is running on this store.
  [[nodiscard]] const std::map<std::string, StoredResult>& results() const { return results_; }

  /// Forces every record appended so far onto stable storage (fflush +
  /// fsync), regardless of the open-time durability level. The manual
  /// barrier for kFlush stores: call at shutdown or before externally
  /// acknowledging a batch of results.
  void sync();

  [[nodiscard]] Durability durability() const { return durability_; }

  [[nodiscard]] std::size_t size() const;
  /// Records replayed from disk when the store was opened.
  [[nodiscard]] std::uint64_t loaded() const { return loaded_; }
  /// Records appended by this process (the "new simulations" counter).
  [[nodiscard]] std::uint64_t appended() const;
  /// Bytes of truncated/corrupt tail discarded during open-time recovery.
  [[nodiscard]] std::uint64_t dropped_bytes() const { return dropped_bytes_; }

  [[nodiscard]] const std::string& journal_path() const { return path_; }

  static constexpr const char* kJournalName = "results.journal";

 private:
  void replay_journal();

  std::string path_;
  Durability durability_ = Durability::kFlush;
  std::FILE* file_ = nullptr;  ///< append handle, opened after replay
  mutable std::mutex mutex_;
  std::map<std::string, StoredResult> results_;
  std::uint64_t loaded_ = 0;
  std::uint64_t appended_ = 0;
  std::uint64_t dropped_bytes_ = 0;
};

}  // namespace indexmac::core
