// Problem construction and operand placement: builds a structured-sparse
// SpMM problem (A sparse N:M, B dense), lays its operands out in simulated
// memory, and emits the kernel program for a chosen algorithm.
//
// This is the top of the public API: quickstart example usage is
//
//   auto problem = SpmmProblem::random({64, 128, 48}, sparse::kSparsity14, 1);
//   MainMemory mem;
//   auto run = prepare(problem, RunConfig{.algorithm = Algorithm::kIndexmac}, mem);
//   Machine machine(run.program, mem);
//   machine.run();
//   auto c = read_c(run, mem);
#pragma once

#include <cstdint>

#include "asm/program.h"
#include "fsim/engine.h"
#include "kernels/kernels.h"
#include "kernels/layout.h"
#include "mem/main_memory.h"
#include "sparse/dense_matrix.h"
#include "sparse/nm_matrix.h"
#include "sparse/packing.h"

namespace indexmac::core {

/// Which kernel executes the multiplication. Everything else about a
/// family (ids, emitters, constraints) lives in its AlgorithmDescriptor —
/// see core/algorithm_registry.h.
enum class Algorithm {
  kIndexmac,      ///< Algorithm 3 ("Proposed"): vindexmac + preloaded B tiles
  kRowwiseSpmm,   ///< Algorithm 2 ("Row-Wise-SpMM")
  kDenseRowwise,  ///< Algorithm 1 (dense baseline; ignores sparsity)
  kIndexmac4,     ///< Algorithm 4: packed-index + dual-row vindexmac variants
  kSsr,           ///< Algorithm 5: SSR-streamed A operands + vindexmacs MACs
};

[[nodiscard]] const char* algorithm_name(Algorithm a);

/// One structured-sparse multiplication problem (data only).
struct SpmmProblem {
  kernels::GemmDims dims;
  sparse::Sparsity sp;
  sparse::NmMatrix<float> a;
  sparse::DenseMatrix<float> b;

  /// Random problem: A is magnitude-pruned to N:M from a dense random
  /// matrix (the paper's TensorFlow pruning substitute), B is dense random.
  [[nodiscard]] static SpmmProblem random(const kernels::GemmDims& dims, sparse::Sparsity sp,
                                          std::uint32_t seed);

  /// Golden result via the reference (scalar) implementation.
  [[nodiscard]] sparse::DenseMatrix<float> reference() const;
};

/// Execution configuration for one prepared run.
struct RunConfig {
  Algorithm algorithm = Algorithm::kIndexmac;
  kernels::KernelOptions kernel;
  unsigned tile_rows = 16;  ///< L (paper uses 16)
  /// Functional-execution engine driving the run. Results are identical
  /// either way (see fsim/engine.h), so this never enters cache keys.
  ExecEngine engine = ExecEngine::kInterp;
};

/// A program plus the layout needed to read results back.
struct PreparedRun {
  RunConfig config;
  kernels::SpmmLayout layout;
  Program program;
};

/// Lays out operands in `mem` and emits the kernel program.
[[nodiscard]] PreparedRun prepare(const SpmmProblem& problem, const RunConfig& config,
                                  MainMemory& mem);

/// Reads the result matrix C back out of simulated memory.
[[nodiscard]] sparse::DenseMatrix<float> read_c(const PreparedRun& run, const MainMemory& mem);

}  // namespace indexmac::core
