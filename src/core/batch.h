// Parallel batch execution of independent simulation runs.
//
// Every simulated execution is self-contained — a Machine/TimingSim owns
// its MainMemory and no mutable global state affects simulated results —
// so sweeps over (shape x sparsity x config) are embarrassingly parallel.
// (The one process-wide mutable in this module, the set_thread_override
// flag, only selects the default pool width, never what a job computes.) BatchRunner is a fixed-size thread pool; run_batch() executes a
// vector of BatchJob descriptions on it and returns per-job cycle and
// memory-access stats in submission order, bit-identical to running the
// same jobs serially (each job re-derives its inputs from a deterministic
// seed, never from shared state).
//
//   BatchRunner pool;  // one worker per hardware thread
//   std::vector<BatchJob> jobs = {...};
//   const auto results = run_batch(pool, jobs);  // results[i] <-> jobs[i]
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "core/runner.h"
#include "core/spmm_problem.h"

namespace indexmac::core {

/// Thrown by run_batch when a cooperative cancel (SIGINT/SIGTERM in the
/// CLI, shutdown in the orchestrator) was observed: jobs not yet started
/// were skipped. Everything that DID finish was delivered through
/// on_result first — with a journaling callback the batch is resumable.
/// A distinct type so callers can turn an interrupt into a "resumable"
/// exit without mistaking real job failures for it.
class BatchCancelled : public SimError {
 public:
  explicit BatchCancelled(const std::string& what) : SimError(what) {}
};

/// Fixed-size worker pool for independent jobs. Tasks submitted after a
/// task throws still run; the exception is delivered through that task's
/// future, so one bad job can never wedge the pool.
class BatchRunner {
 public:
  /// Spawns `threads` workers; 0 means default_thread_count().
  explicit BatchRunner(unsigned threads = 0);

  /// Drains outstanding work, then joins the workers.
  ~BatchRunner();

  BatchRunner(const BatchRunner&) = delete;
  BatchRunner& operator=(const BatchRunner&) = delete;

  [[nodiscard]] unsigned thread_count() const { return static_cast<unsigned>(workers_.size()); }

  /// Upper bound accepted from INDEXMAC_THREADS (a worker pool beyond this
  /// is certainly a typo, not a machine).
  static constexpr unsigned kMaxThreads = 1024;

  /// Pool size used for `threads == 0`: the set_thread_override() value if
  /// any (the CLI --threads flag), else the INDEXMAC_THREADS environment
  /// variable if set (so benches can be pinned without a rebuild),
  /// otherwise std::thread::hardware_concurrency(), never less than 1.
  /// INDEXMAC_THREADS must parse fully as an integer in [1, kMaxThreads];
  /// anything else (0, garbage, trailing junk, huge values) throws SimError
  /// rather than silently clamping.
  [[nodiscard]] static unsigned default_thread_count();

  /// Parses a user-supplied thread count (the --threads CLI flag) with the
  /// same strictness as INDEXMAC_THREADS: the whole string must be an
  /// integer in [1, kMaxThreads], anything else throws SimError.
  [[nodiscard]] static unsigned parse_thread_count(const std::string& text);

  /// Process-wide default-width override; takes precedence over
  /// INDEXMAC_THREADS in default_thread_count() (the CLI flag wins over
  /// the environment). 0 clears the override.
  static void set_thread_override(unsigned threads);

  /// Schedules any callable; the returned future carries its result or
  /// exception.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    enqueue([task]() mutable { (*task)(); });
    return future;
  }

 private:
  void enqueue(std::function<void()> job);
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// One independent timing measurement, described by value so it can be
/// executed on any worker thread at any time.
struct BatchJob {
  enum class Mode {
    kExact,    ///< run_exact on a problem built from (dims, sp, seed)
    kSampled,  ///< run_sampled on (dims, sp)
  };

  Mode mode = Mode::kSampled;
  kernels::GemmDims dims;
  sparse::Sparsity sp = sparse::kSparsity14;
  /// Includes RunConfig::engine: jobs driven by the threaded engine return
  /// measurements bit-identical to interpreter-driven ones, so mixed-engine
  /// batches are safe (results never encode which engine produced them).
  RunConfig config;
  timing::ProcessorConfig processor;
  SampleParams sample;     ///< kSampled only
  std::uint32_t seed = 1;  ///< kExact only: RNG seed for SpmmProblem::random

  /// kExact only: pre-built problem shared across jobs (overrides `seed`;
  /// e.g. the ablations compare several configs on one problem instance).
  std::shared_ptr<const SpmmProblem> problem;
};

/// Shorthand constructors for the two job modes.
[[nodiscard]] BatchJob sampled_job(const kernels::GemmDims& dims, sparse::Sparsity sp,
                                   const RunConfig& config,
                                   const timing::ProcessorConfig& processor,
                                   const SampleParams& sample = SampleParams{});
[[nodiscard]] BatchJob exact_job(std::shared_ptr<const SpmmProblem> problem,
                                 const RunConfig& config,
                                 const timing::ProcessorConfig& processor);

/// Per-job measurement. `cycles` and `data_accesses` are the headline
/// metrics of both run modes; `stats` holds the full TimingStats of the
/// run (for kSampled, of the miniature instrumented run).
struct BatchResult {
  double cycles = 0;
  std::uint64_t data_accesses = 0;
  timing::TimingStats stats;
};

/// Executes one job synchronously on the calling thread.
[[nodiscard]] BatchResult run_job(const BatchJob& job);

/// Runs all jobs on the pool. results[i] corresponds to jobs[i] regardless
/// of completion order or thread count. If jobs threw, the first failure
/// (in submission order) is rethrown after every job has finished.
[[nodiscard]] std::vector<BatchResult> run_batch(BatchRunner& runner,
                                                 const std::vector<BatchJob>& jobs);

/// Same, but invokes `on_result(i, results[i])` on the worker thread the
/// moment job i finishes — in completion order, possibly concurrently, so
/// the callback must be thread-safe. This is the crash-safety hook: the
/// sweep engine journals every completed measurement through it, and
/// because it fires at completion (not at collection), a killed process
/// keeps every job that finished, even while an earlier-submitted job is
/// still running. `on_result` is never called for a job that threw; an
/// exception thrown *by* the callback fails that job like a job error.
///
/// `cancel` (optional) is the graceful-interrupt hook: each job checks it
/// immediately before running, and once it reads true, not-yet-started
/// jobs are skipped while in-flight jobs run to completion and journal
/// through on_result as usual. When any job was skipped, run_batch throws
/// BatchCancelled after the batch drains (completed results having been
/// delivered), so a --store'd sweep interrupt is resumable by rerun.
[[nodiscard]] std::vector<BatchResult> run_batch(
    BatchRunner& runner, const std::vector<BatchJob>& jobs,
    const std::function<void(std::size_t, const BatchResult&)>& on_result,
    const std::atomic<bool>* cancel = nullptr);

/// Convenience overload running on a temporary pool (0 = default size).
[[nodiscard]] std::vector<BatchResult> run_batch(const std::vector<BatchJob>& jobs,
                                                 unsigned threads = 0);

}  // namespace indexmac::core
