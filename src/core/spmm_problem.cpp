#include "core/spmm_problem.h"

#include "common/error.h"
#include "core/algorithm_registry.h"

namespace indexmac::core {

const char* algorithm_name(Algorithm a) {
  // Registry entries live for the process lifetime, so the pointer stays
  // valid like the string literals it replaced.
  return AlgorithmRegistry::instance().by_algorithm(a).display_name.c_str();
}

SpmmProblem SpmmProblem::random(const kernels::GemmDims& dims, sparse::Sparsity sp,
                                std::uint32_t seed) {
  const auto a_dense = sparse::random_matrix<float>(dims.rows_a, dims.k, seed, -1.0f, 1.0f);
  return SpmmProblem{
      .dims = dims,
      .sp = sp,
      .a = sparse::NmMatrix<float>::prune_from_dense(a_dense, sp),
      .b = sparse::random_matrix<float>(dims.k, dims.cols_b, seed + 1, -1.0f, 1.0f),
  };
}

sparse::DenseMatrix<float> SpmmProblem::reference() const { return spmm_reference(a, b); }

namespace {

/// Places the B image (and zeroed C) shared by all algorithms.
void place_b_and_c(const SpmmProblem& problem, const kernels::SpmmLayout& layout,
                   MainMemory& mem) {
  const auto b_image =
      sparse::to_padded_rows(problem.b, layout.b_pitch_elems, layout.k_padded);
  mem.write_f32s(layout.b_base, b_image);
  const std::vector<float> c_zero(problem.dims.rows_a * layout.c_pitch_elems, 0.0f);
  mem.write_f32s(layout.c_base, c_zero);
}

}  // namespace

PreparedRun prepare(const SpmmProblem& problem, const RunConfig& config, MainMemory& mem) {
  IMAC_CHECK(problem.dims.k == problem.a.cols() || problem.a.padded_cols() >= problem.dims.k,
             "problem dims disagree with A");
  AddressAllocator alloc;
  kernels::SpmmLayout layout =
      kernels::make_layout(problem.dims, problem.sp, config.tile_rows, alloc);
  const AlgorithmDescriptor& desc = AlgorithmRegistry::instance().by_algorithm(config.algorithm);

  if (desc.dense_operands) {
    // Dense family: store A densely (row pitch = multiple of 16 elements).
    const std::size_t a_pitch = round_up(problem.dims.k, isa::kVlMax);
    const std::uint64_t a_base = alloc.alloc(problem.dims.rows_a * a_pitch * 4);
    const auto a_image =
        sparse::to_padded_rows(problem.a.to_dense(), a_pitch, problem.dims.rows_a);
    mem.write_f32s(a_base, a_image);
    place_b_and_c(problem, layout, mem);
    return PreparedRun{config, layout,
                       desc.emit({.layout = layout,
                                  .options = config.kernel,
                                  .dense_a_base = a_base,
                                  .dense_a_pitch_elems = a_pitch})};
  }

  sparse::PackConfig pack_config{
      .tile_rows = config.tile_rows,
      .mode = desc.index_mode,
      .b_pitch_bytes = static_cast<std::uint32_t>(layout.b_pitch_elems * 4),
      .base_vreg = kernels::b_tile_base_vreg(config.tile_rows),
  };
  const auto packed = sparse::pack_a(problem.a, pack_config);
  IMAC_ASSERT(packed.num_ktiles == layout.num_ktiles &&
                  packed.slots_per_tile == layout.slots_per_tile,
              "packing and layout disagree");
  mem.write_f32s(layout.a_values, packed.values);
  mem.write_i32s(layout.a_indices, packed.indices);
  place_b_and_c(problem, layout, mem);

  Program program = desc.emit({.layout = layout, .options = config.kernel});
  return PreparedRun{config, layout, std::move(program)};
}

sparse::DenseMatrix<float> read_c(const PreparedRun& run, const MainMemory& mem) {
  sparse::DenseMatrix<float> c(run.layout.dims.rows_a, run.layout.dims.cols_b);
  for (std::size_t r = 0; r < c.rows(); ++r) {
    const auto row =
        mem.read_f32s(run.layout.c_base + r * run.layout.c_pitch_elems * 4, c.cols());
    for (std::size_t j = 0; j < c.cols(); ++j) c.at(r, j) = row[j];
  }
  return c;
}

}  // namespace indexmac::core
