// Infrastructure microbenchmarks (google-benchmark): encoder/decoder,
// assembler, functional-simulator and timing-simulator throughput. These
// bound how long the figure benches take and catch performance regressions
// in the simulation stack itself.
#include <benchmark/benchmark.h>

#include "asm/assembler.h"
#include "core/runner.h"
#include "core/spmm_problem.h"
#include "fsim/machine.h"
#include "isa/encoding.h"
#include "timing/timing_sim.h"

namespace {

using namespace indexmac;

void BM_EncodeDecodeRoundTrip(benchmark::State& state) {
  const isa::Instruction inst{isa::Op::kVindexmacVx, 2, 7, 4, 0};
  for (auto _ : state) {
    const std::uint32_t word = isa::encode(inst);
    benchmark::DoNotOptimize(isa::decode(word));
  }
}
BENCHMARK(BM_EncodeDecodeRoundTrip);

void BM_AssembleKernel(benchmark::State& state) {
  AddressAllocator alloc;
  const auto layout = kernels::make_layout({64, 128, 64}, sparse::kSparsity24, 16, alloc);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        kernels::emit_indexmac_kernel(layout, kernels::KernelOptions{.unroll = 4}));
  }
  state.SetLabel("instructions per program ~" +
                 std::to_string(
                     kernels::emit_indexmac_kernel(layout, kernels::KernelOptions{.unroll = 4})
                         .size()));
}
BENCHMARK(BM_AssembleKernel);

void BM_FunctionalSimulation(benchmark::State& state) {
  const auto problem = core::SpmmProblem::random({16, 64, 32}, sparse::kSparsity24, 1);
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    state.PauseTiming();
    MainMemory mem;
    const auto run = core::prepare(
        problem, core::RunConfig{.algorithm = core::Algorithm::kIndexmac, .kernel = {.unroll = 4}},
        mem);
    Machine machine(run.program, mem);
    state.ResumeTiming();
    machine.run();
    instructions += machine.instructions_retired();
  }
  state.counters["instr/s"] =
      benchmark::Counter(static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FunctionalSimulation)->Unit(benchmark::kMillisecond);

void BM_TimingSimulation(benchmark::State& state) {
  const auto problem = core::SpmmProblem::random({16, 64, 32}, sparse::kSparsity24, 1);
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    state.PauseTiming();
    MainMemory mem;
    const auto run = core::prepare(
        problem, core::RunConfig{.algorithm = core::Algorithm::kIndexmac, .kernel = {.unroll = 4}},
        mem);
    state.ResumeTiming();
    timing::TimingSim sim(run.program, mem, timing::ProcessorConfig{});
    instructions += sim.run().instructions;
  }
  state.counters["instr/s"] =
      benchmark::Counter(static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TimingSimulation)->Unit(benchmark::kMillisecond);

void BM_SampledLayerMeasurement(benchmark::State& state) {
  const kernels::GemmDims dims{256, 2304, 196};  // a large ResNet50 layer
  for (auto _ : state) {
    const auto r = core::run_sampled(
        dims, sparse::kSparsity14,
        core::RunConfig{.algorithm = core::Algorithm::kIndexmac, .kernel = {.unroll = 4}},
        timing::ProcessorConfig{});
    benchmark::DoNotOptimize(r.cycles);
  }
}
BENCHMARK(BM_SampledLayerMeasurement)->Unit(benchmark::kMillisecond);

void BM_PruneToNm(benchmark::State& state) {
  const auto dense = sparse::random_matrix<float>(256, 1024, 5, -1.0f, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::NmMatrix<float>::prune_from_dense(dense, sparse::kSparsity24));
  }
}
BENCHMARK(BM_PruneToNm)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
