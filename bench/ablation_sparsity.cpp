// Extension ablation: N:M sweep beyond the paper's 1:4 and 2:4 (adds 1:2
// and 2:8) on a representative layer shape, including the dense baseline
// (Algorithm 1) for context.
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace indexmac;
  using namespace indexmac::bench;
  using core::Algorithm;
  using core::RunConfig;

  const timing::ProcessorConfig proc{};
  print_section("Extension: sparsity-pattern sweep (paper evaluates 1:4 and 2:4)");

  const kernels::GemmDims dims{64, 576, 98};
  const sparse::Sparsity sweep[] = {sparse::Sparsity{1, 2}, sparse::Sparsity{1, 4},
                                    sparse::Sparsity{2, 4}, sparse::Sparsity{2, 8}};

  // One batch: the dense baseline plus both kernels at every pattern.
  core::BatchRunner pool;
  std::vector<core::BatchJob> jobs;
  {
    auto dense_problem = std::make_shared<const core::SpmmProblem>(
        core::SpmmProblem::random(dims, sparse::Sparsity{4, 4}, 3));
    jobs.push_back(core::exact_job(
        dense_problem, RunConfig{.algorithm = Algorithm::kDenseRowwise, .kernel = {.unroll = 1}},
        proc));
  }
  for (const auto sp : sweep) {
    auto problem =
        std::make_shared<const core::SpmmProblem>(core::SpmmProblem::random(dims, sp, 3));
    jobs.push_back(core::exact_job(
        problem, RunConfig{.algorithm = Algorithm::kRowwiseSpmm, .kernel = {.unroll = 4}}, proc));
    jobs.push_back(core::exact_job(
        problem, RunConfig{.algorithm = Algorithm::kIndexmac, .kernel = {.unroll = 4}}, proc));
  }
  print_pool_note(jobs.size(), pool);
  const auto results = core::run_batch(pool, jobs);

  std::printf("Dense row-wise baseline (Algorithm 1) on %s: %s cycles\n\n",
              dims_label(dims).c_str(), fmt_count(results[0].stats.cycles).c_str());

  TextTable table;
  table.set_header({"sparsity", "Row-Wise-SpMM", "Proposed", "speedup", "accesses ratio"});
  std::size_t cursor = 1;
  for (const auto sp : sweep) {
    const auto& r2 = results[cursor++];
    const auto& r3 = results[cursor++];
    table.add_row({std::to_string(sp.n) + ":" + std::to_string(sp.m),
                   fmt_count(r2.stats.cycles), fmt_count(r3.stats.cycles),
                   fmt_speedup(r2.cycles / r3.cycles),
                   fmt_fixed(static_cast<double>(r3.data_accesses) /
                                 static_cast<double>(r2.data_accesses),
                             3)});
  }
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
