// Table I: the simulated processor configuration. Prints the parameters the
// timing model actually uses, in the layout of the paper's table.
#include <cstdio>

#include "timing/config.h"

int main() {
  std::printf("=== Table I: simulated processor configuration ===\n\n%s\n",
              indexmac::timing::ProcessorConfig{}.describe().c_str());
  return 0;
}
