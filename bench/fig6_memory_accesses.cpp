// Figure 6: total memory accesses of the proposed kernel normalized to
// Row-Wise-SpMM, per CNN, at 1:4 and 2:4 structured sparsity. Counts are
// data-side memory operations (vector loads/stores; the kernels make no
// scalar data accesses), summed over all conv-layer records of the
// registry's CNN model graphs.
//
// The counts are structure-determined (kernels::predict_*_footprint);
// tests/test_runner.cpp verifies them against dynamic simulation.
#include <cstdio>

#include "bench_util.h"

namespace {

using namespace indexmac;
using namespace indexmac::bench;

struct AccessTotals {
  std::uint64_t rowwise = 0;
  std::uint64_t proposed = 0;
};

AccessTotals count_model(const workloads::ModelGraph& graph, sparse::Sparsity sp) {
  AccessTotals total;
  for (const auto& layer : graph.layers) {
    AddressAllocator alloc;
    const auto layout = kernels::make_layout(layer.gemm, sp, 16, alloc);
    const auto fp2 = kernels::predict_rowwise_footprint(layout);
    const auto fp3 = kernels::predict_indexmac_footprint(layout);
    total.rowwise += (fp2.vector_loads + fp2.vector_stores) * layer.repeat;
    total.proposed += (fp3.vector_loads + fp3.vector_stores) * layer.repeat;
  }
  return total;
}

/// The counts are analytic (no simulation), but each (model, sparsity)
/// cell is still independent work — run them through the pool's generic
/// task interface.
std::future<AccessTotals> count_async(core::BatchRunner& pool,
                                      const workloads::ModelGraph& graph,
                                      sparse::Sparsity sp) {
  return pool.submit([&graph, sp] { return count_model(graph, sp); });
}

}  // namespace

int main() {
  print_section("Fig. 6: total memory accesses, Proposed normalized to Row-Wise-SpMM");
  std::printf("Paper reports: accesses reduced by ~48%% on average at 1:4 sparsity and\n"
              "~65%% at 2:4 (larger reduction at 2:4: twice the eliminated B-row loads\n"
              "against the same fixed value/index/C traffic).\n\n");

  TextTable table;
  table.set_header({"network", "normalized 1:4", "reduction 1:4", "normalized 2:4",
                    "reduction 2:4"});
  double sum14 = 0, sum24 = 0;
  int n = 0;
  const char* suite_names[] = {"resnet50", "densenet121", "inceptionv3"};
  indexmac::core::BatchRunner pool;
  std::vector<std::future<AccessTotals>> f14, f24;
  for (const char* name : suite_names) {
    const workloads::ModelGraph& graph = workloads::model_graph(name);
    f14.push_back(count_async(pool, graph, sparse::kSparsity14));
    f24.push_back(count_async(pool, graph, sparse::kSparsity24));
  }
  for (std::size_t mi = 0; mi < std::size(suite_names); ++mi) {
    const workloads::ModelGraph& graph = workloads::model_graph(suite_names[mi]);
    const AccessTotals t14 = f14[mi].get();
    const AccessTotals t24 = f24[mi].get();
    const double n14 = static_cast<double>(t14.proposed) / static_cast<double>(t14.rowwise);
    const double n24 = static_cast<double>(t24.proposed) / static_cast<double>(t24.rowwise);
    table.add_row({graph.display_name, fmt_fixed(n14, 3), fmt_fixed((1 - n14) * 100, 1) + "%",
                   fmt_fixed(n24, 3), fmt_fixed((1 - n24) * 100, 1) + "%"});
    sum14 += n14;
    sum24 += n24;
    ++n;
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Average reduction: 1:4 -> %.1f%%, 2:4 -> %.1f%%\n", (1 - sum14 / n) * 100,
              (1 - sum24 / n) * 100);
  return 0;
}
