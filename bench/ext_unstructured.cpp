// Extension bench (paper Section I motivation): structured vs unstructured
// sparsity on the same vector processor at matched per-row density.
// Unstructured column indexes are unbounded, so the B tile cannot live in
// the vector register file — every non-zero pays a memory load (ELLPACK
// kernel) — while 1:4 / 2:4 structured sparsity unlocks the vindexmac
// indirect-read path.
#include <cstdio>

#include "bench_util.h"
#include "core/unstructured.h"
#include "fsim/machine.h"
#include "sparse/ellpack.h"
#include "timing/timing_sim.h"

int main() {
  using namespace indexmac;
  using namespace indexmac::bench;
  using core::Algorithm;
  using core::RunConfig;

  const timing::ProcessorConfig proc{};
  print_section("Extension: structured (vindexmac) vs unstructured (ELLPACK) sparsity");
  std::printf("Same per-row non-zero budget; unstructured positions are magnitude-chosen\n"
              "per row. Cycles from exact simulation.\n\n");

  const kernels::GemmDims dims{64, 256, 98};
  TextTable table;
  table.set_header({"density", "unstructured ELLPACK", "Row-Wise-SpMM (N:M)",
                    "Proposed (N:M)", "Proposed vs ELLPACK"});
  struct Case {
    sparse::Sparsity sp;
    const char* label;
  };
  for (const Case c : {Case{sparse::kSparsity14, "25% (1:4)"},
                       Case{sparse::kSparsity24, "50% (2:4)"}}) {
    const auto problem = core::SpmmProblem::random(dims, c.sp, 23);
    const auto rowwise = core::run_exact(
        problem, RunConfig{.algorithm = Algorithm::kRowwiseSpmm, .kernel = {.unroll = 4}}, proc);
    const auto proposed = core::run_exact(
        problem, RunConfig{.algorithm = Algorithm::kIndexmac, .kernel = {.unroll = 4}}, proc);

    const auto dense = sparse::random_matrix<float>(dims.rows_a, dims.k, 24, -1.0f, 1.0f);
    const auto unstructured =
        sparse::prune_unstructured(dense, dims.k * c.sp.n / c.sp.m);
    // Cost-model contract of this comparison: ELLPACK pads every row to
    // the densest row's non-zero count, and padding slots pay real gather
    // loads (see EllpackMatrix::from_dense). Magnitude pruning of a random
    // dense matrix keeps exactly `keep` non-zeros in every row, so here
    // the format is padding-free and the unstructured baseline's
    // memory-access numbers count genuine non-zeros only — the structured
    // vs unstructured gap below is not inflated by row imbalance.
    IMAC_CHECK(sparse::EllpackMatrix<float>::from_dense(unstructured).padding_fraction() == 0.0,
               "unstructured baseline unexpectedly padded: per-row nnz is imbalanced");
    const auto b = sparse::random_matrix<float>(dims.k, dims.cols_b, 25, -1.0f, 1.0f);
    MainMemory mem;
    const auto run = core::prepare_ellpack(unstructured, b, mem);
    timing::TimingSim sim(run.program, mem, proc);
    const auto& ell = sim.run();

    table.add_row({c.label, fmt_count(ell.cycles), fmt_count(rowwise.stats.cycles),
                   fmt_count(proposed.stats.cycles),
                   fmt_speedup(static_cast<double>(ell.cycles) /
                               static_cast<double>(proposed.stats.cycles))});
  }
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
