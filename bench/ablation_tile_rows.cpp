// Section III ablation: how many B rows (L) to preload. The paper fixes
// L=16; Section III derives the upper bound L <= M * VectorLength / N
// beyond which extra preloaded rows are never addressed. Smaller L preloads
// less but amortizes the preload over fewer non-zero slots per tile.
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace indexmac;
  using namespace indexmac::bench;
  using core::Algorithm;
  using core::RunConfig;

  const timing::ProcessorConfig proc{};
  print_section("Ablation: preloaded B-tile rows L (paper uses L=16)");

  const kernels::GemmDims dims{64, 576, 98};
  const unsigned tile_rows[] = {4u, 8u, 16u};

  // Per sparsity: the Row-Wise-SpMM reference plus one Proposed run per L,
  // all sharing that sparsity's problem instance, in one batch.
  core::BatchRunner pool;
  std::vector<core::BatchJob> jobs;
  for (const auto sp : {sparse::kSparsity14, sparse::kSparsity24}) {
    auto problem =
        std::make_shared<const core::SpmmProblem>(core::SpmmProblem::random(dims, sp, 11));
    jobs.push_back(core::exact_job(
        problem, RunConfig{.algorithm = Algorithm::kRowwiseSpmm, .kernel = {.unroll = 4}}, proc));
    for (const unsigned l : tile_rows)
      jobs.push_back(core::exact_job(problem,
                                     RunConfig{.algorithm = Algorithm::kIndexmac,
                                               .kernel = {.unroll = 4},
                                               .tile_rows = l},
                                     proc));
  }
  print_pool_note(jobs.size(), pool);
  const auto results = core::run_batch(pool, jobs);

  std::size_t cursor = 0;
  for (const auto sp : {sparse::kSparsity14, sparse::kSparsity24}) {
    const auto& rowwise = results[cursor++];
    TextTable table;
    table.set_header({"L (B rows in VRF)", "Proposed cycles", "vs Row-Wise-SpMM"});
    for (const unsigned l : tile_rows) {
      const auto& r = results[cursor++];
      table.add_row({std::to_string(l), fmt_count(r.stats.cycles),
                     fmt_speedup(rowwise.cycles / r.cycles)});
    }
    std::printf("Sparsity %d:%d on GEMM %s (Row-Wise-SpMM: %s cycles)\n%s\n", sp.n, sp.m,
                dims_label(dims).c_str(), fmt_count(rowwise.stats.cycles).c_str(),
                table.to_string().c_str());
  }
  return 0;
}
