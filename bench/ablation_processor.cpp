// Robustness ablation: does the headline speedup survive processor
// parameter changes? Sweeps DRAM latency, L2 capacity and issue width on a
// representative layer (sampled runs), reporting the Proposed vs
// Row-Wise-SpMM speedup under each variant.
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace indexmac;
  using namespace indexmac::bench;

  print_section("Ablation: speedup robustness across processor configurations");

  const kernels::GemmDims dims{128, 1152, 196};  // a mid ResNet50 layer
  struct Variant {
    const char* label;
    timing::ProcessorConfig proc;
  };
  std::vector<Variant> variants;
  variants.push_back({"baseline (Table I)", {}});
  {
    timing::ProcessorConfig p{};
    p.memory.dram_latency = 200;
    p.memory.dram_line_occupancy = 14;
    variants.push_back({"2x slower DRAM", p});
  }
  {
    timing::ProcessorConfig p{};
    p.memory.l2.size_bytes = 128 * 1024;
    variants.push_back({"128KB L2", p});
  }
  {
    timing::ProcessorConfig p{};
    p.scalar.issue_width = 4;
    p.scalar.fetch_width = 4;
    p.scalar.commit_width = 4;
    variants.push_back({"4-wide scalar core", p});
  }
  {
    timing::ProcessorConfig p{};
    p.vector.queue_entries = 4;
    variants.push_back({"4-entry vector queue", p});
  }
  {
    timing::ProcessorConfig p{};
    p.vector.to_scalar_latency = 8;
    variants.push_back({"slow vector->scalar path", p});
  }

  // Every (sparsity, processor variant) cell is an independent sampled
  // measurement; sweep them all in one batch.
  core::BatchRunner pool;
  std::vector<LayerQuery> queries;
  for (const auto sp : {sparse::kSparsity14, sparse::kSparsity24})
    for (const Variant& v : variants) queries.push_back({dims, sp, v.proc});
  print_pool_note(queries.size() * 2, pool);
  const auto measured = measure_layers(pool, queries);

  std::size_t cursor = 0;
  for (const auto sp : {sparse::kSparsity14, sparse::kSparsity24}) {
    TextTable table;
    table.set_header({"configuration", "Row-Wise-SpMM", "Proposed", "speedup"});
    for (const Variant& v : variants) {
      const auto& m = measured[cursor++];
      table.add_row({v.label, fmt_count(static_cast<std::uint64_t>(m.rowwise_cycles)),
                     fmt_count(static_cast<std::uint64_t>(m.proposed_cycles)),
                     fmt_speedup(m.speedup())});
    }
    std::printf("Sparsity %u:%u on GEMM %s\n%s\n", sp.n, sp.m, dims_label(dims).c_str(),
                table.to_string().c_str());
  }
  return 0;
}
