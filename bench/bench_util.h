// Shared helpers for the experiment benches (Fig. 4/5/6 + ablations).
#pragma once

#include <cstdio>
#include <string>

#include "cnn/conv_layer.h"
#include "common/format.h"
#include "core/runner.h"
#include "core/spmm_problem.h"

namespace indexmac::bench {

/// Both kernels measured on one GEMM at one sparsity.
struct LayerMeasurement {
  double rowwise_cycles = 0;
  double proposed_cycles = 0;
  std::uint64_t rowwise_accesses = 0;
  std::uint64_t proposed_accesses = 0;

  [[nodiscard]] double speedup() const { return rowwise_cycles / proposed_cycles; }
  [[nodiscard]] double normalized_accesses() const {
    return static_cast<double>(proposed_accesses) / static_cast<double>(rowwise_accesses);
  }
};

/// Measures one layer GEMM with the sampled runner (both algorithms use the
/// B-stationary dataflow and 4-way unrolling, as in the paper).
inline LayerMeasurement measure_layer(const kernels::GemmDims& dims, sparse::Sparsity sp,
                                      const timing::ProcessorConfig& proc,
                                      const core::SampleParams& params = core::SampleParams{}) {
  using core::Algorithm;
  using core::RunConfig;
  LayerMeasurement out;
  const RunConfig rowwise{.algorithm = Algorithm::kRowwiseSpmm, .kernel = {.unroll = 4}};
  const RunConfig proposed{.algorithm = Algorithm::kIndexmac, .kernel = {.unroll = 4}};
  const auto r2 = core::run_sampled(dims, sp, rowwise, proc, params);
  const auto r3 = core::run_sampled(dims, sp, proposed, proc, params);
  out.rowwise_cycles = r2.cycles;
  out.proposed_cycles = r3.cycles;
  out.rowwise_accesses = r2.data_accesses;
  out.proposed_accesses = r3.data_accesses;
  return out;
}

/// Short "RxKxN" label for a GEMM.
inline std::string dims_label(const kernels::GemmDims& d) {
  return std::to_string(d.rows_a) + "x" + std::to_string(d.k) + "x" + std::to_string(d.cols_b);
}

inline void print_section(const std::string& title) {
  std::printf("\n=== %s ===\n\n", title.c_str());
}

}  // namespace indexmac::bench
