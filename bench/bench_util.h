// Shared helpers for the experiment benches (Fig. 4/5/6 + ablations).
// Sweeps go through core::run_batch so multi-point figures use every core;
// pin the worker count with INDEXMAC_THREADS=N when comparing wall-clock.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/format.h"
#include "core/batch.h"
#include "core/runner.h"
#include "core/spmm_problem.h"
#include "workloads/workloads.h"

namespace indexmac::bench {

/// Both kernels measured on one GEMM at one sparsity.
struct LayerMeasurement {
  double rowwise_cycles = 0;
  double proposed_cycles = 0;
  std::uint64_t rowwise_accesses = 0;
  std::uint64_t proposed_accesses = 0;

  [[nodiscard]] double speedup() const { return rowwise_cycles / proposed_cycles; }
  [[nodiscard]] double normalized_accesses() const {
    return static_cast<double>(proposed_accesses) / static_cast<double>(rowwise_accesses);
  }
};

/// The paper's kernel configurations: B-stationary dataflow, 4-way
/// unrolling, for Row-Wise-SpMM (Algorithm 2) and Proposed (Algorithm 3).
inline core::RunConfig rowwise_config() {
  return {.algorithm = core::Algorithm::kRowwiseSpmm, .kernel = {.unroll = 4}};
}
inline core::RunConfig proposed_config() {
  return {.algorithm = core::Algorithm::kIndexmac, .kernel = {.unroll = 4}};
}

/// One requested layer measurement: a GEMM shape at a sparsity pattern,
/// optionally under a non-default processor configuration.
struct LayerQuery {
  kernels::GemmDims dims;
  sparse::Sparsity sp;
  timing::ProcessorConfig proc;
};

/// Measures many layer GEMMs concurrently with the sampled runner (two
/// jobs per query, one per algorithm) on `runner`'s pool. Results
/// index-align with `queries` and are identical to serial measurement.
inline std::vector<LayerMeasurement> measure_layers(
    core::BatchRunner& runner, const std::vector<LayerQuery>& queries,
    const core::SampleParams& params = core::SampleParams{}) {
  std::vector<core::BatchJob> jobs;
  jobs.reserve(queries.size() * 2);
  for (const LayerQuery& q : queries) {
    jobs.push_back(core::sampled_job(q.dims, q.sp, rowwise_config(), q.proc, params));
    jobs.push_back(core::sampled_job(q.dims, q.sp, proposed_config(), q.proc, params));
  }
  const auto results = core::run_batch(runner, jobs);

  std::vector<LayerMeasurement> out(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    out[i].rowwise_cycles = results[2 * i].cycles;
    out[i].proposed_cycles = results[2 * i + 1].cycles;
    out[i].rowwise_accesses = results[2 * i].data_accesses;
    out[i].proposed_accesses = results[2 * i + 1].data_accesses;
  }
  return out;
}

/// "(x jobs on y threads)" banner so sweep parallelism is visible.
inline void print_pool_note(std::size_t jobs, const core::BatchRunner& runner) {
  std::printf("(%zu measurement jobs on %u worker threads)\n\n", jobs, runner.thread_count());
}

/// Short "RxKxN" label for a GEMM.
inline std::string dims_label(const kernels::GemmDims& d) {
  return std::to_string(d.rows_a) + "x" + std::to_string(d.k) + "x" + std::to_string(d.cols_b);
}

inline void print_section(const std::string& title) {
  std::printf("\n=== %s ===\n\n", title.c_str());
}

}  // namespace indexmac::bench
