// Section IV-A ablation: loop unrolling. The paper applies 4-way unrolling
// (four output rows per iteration, following [17]) to both kernels and
// notes both benefit equally. Exact simulations across unroll factors.
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace indexmac;
  using namespace indexmac::bench;
  using core::Algorithm;
  using core::RunConfig;

  const timing::ProcessorConfig proc{};
  print_section("Ablation: loop unrolling (four output rows per iteration, as in [17])");

  const kernels::GemmDims dims{64, 576, 98};
  const unsigned unrolls[] = {1u, 2u, 4u};

  // Both kernels at every unroll factor, per sparsity, in one batch; each
  // sparsity's jobs share one problem instance.
  core::BatchRunner pool;
  std::vector<core::BatchJob> jobs;
  for (const auto sp : {sparse::kSparsity14, sparse::kSparsity24}) {
    auto problem =
        std::make_shared<const core::SpmmProblem>(core::SpmmProblem::random(dims, sp, 7));
    for (const unsigned unroll : unrolls) {
      jobs.push_back(core::exact_job(
          problem, RunConfig{.algorithm = Algorithm::kRowwiseSpmm, .kernel = {.unroll = unroll}},
          proc));
      jobs.push_back(core::exact_job(
          problem, RunConfig{.algorithm = Algorithm::kIndexmac, .kernel = {.unroll = unroll}},
          proc));
    }
  }
  print_pool_note(jobs.size(), pool);
  const auto results = core::run_batch(pool, jobs);

  std::size_t cursor = 0;
  for (const auto sp : {sparse::kSparsity14, sparse::kSparsity24}) {
    TextTable table;
    table.set_header({"unroll", "Row-Wise-SpMM cycles", "Proposed cycles", "speedup"});
    for (const unsigned unroll : unrolls) {
      const auto& r2 = results[cursor++];
      const auto& r3 = results[cursor++];
      table.add_row({std::to_string(unroll), fmt_count(r2.stats.cycles),
                     fmt_count(r3.stats.cycles), fmt_speedup(r2.cycles / r3.cycles)});
    }
    std::printf("Sparsity %d:%d on GEMM %s\n%s\n", sp.n, sp.m, dims_label(dims).c_str(),
                table.to_string().c_str());
  }
  return 0;
}
