// Section IV-A ablation: loop unrolling. The paper applies 4-way unrolling
// (four output rows per iteration, following [17]) to both kernels and
// notes both benefit equally. Exact simulations across unroll factors.
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace indexmac;
  using namespace indexmac::bench;
  using core::Algorithm;
  using core::RunConfig;

  const timing::ProcessorConfig proc{};
  print_section("Ablation: loop unrolling (four output rows per iteration, as in [17])");

  const kernels::GemmDims dims{64, 576, 98};
  for (const auto sp : {sparse::kSparsity14, sparse::kSparsity24}) {
    const auto problem = core::SpmmProblem::random(dims, sp, 7);
    TextTable table;
    table.set_header({"unroll", "Row-Wise-SpMM cycles", "Proposed cycles", "speedup"});
    for (const unsigned unroll : {1u, 2u, 4u}) {
      const auto r2 = core::run_exact(
          problem, RunConfig{.algorithm = Algorithm::kRowwiseSpmm, .kernel = {.unroll = unroll}},
          proc);
      const auto r3 = core::run_exact(
          problem, RunConfig{.algorithm = Algorithm::kIndexmac, .kernel = {.unroll = unroll}},
          proc);
      table.add_row({std::to_string(unroll), fmt_count(r2.stats.cycles),
                     fmt_count(r3.stats.cycles),
                     fmt_speedup(static_cast<double>(r2.stats.cycles) /
                                 static_cast<double>(r3.stats.cycles))});
    }
    std::printf("Sparsity %d:%d on GEMM %s\n%s\n", sp.n, sp.m, dims_label(dims).c_str(),
                table.to_string().c_str());
  }
  return 0;
}
