// Simulator-throughput benchmark: how many dynamic instructions per second
// the trace-driven timing model retires. Every reproduced figure is gated
// by this number, so the repo tracks it: the CI Release job runs this
// harness and compares the emitted BENCH_sim_throughput.json against the
// checked-in baseline (bench/sim_throughput_baseline.json), warning on a
// >20% regression.
//
// Scenarios exercise the distinct hot paths of timing::Model:
//   * scalar_heavy   — branchy scalar loop (front end + scalar issue + L1D)
//   * vector_heavy   — exact indexmac SpMM run (vector dispatch + engine)
//   * algorithm4     — the same SpMM on the packed-index/dual-row kernel;
//                      its tracked sim_cycles, against vector_heavy's,
//                      records the Algorithm 3 -> 4 cycle gain
//   * gather_heavy   — SpMV built on vluxei32 (per-element L2 accesses,
//                      the path the zero-allocation trace targets)
//   * sampled        — run_sampled miniature run (the sweep workhorse)
// and the functional simulator alone (no timing model), interpreter vs the
// threaded-code engine on the same programs — the tracked pair that gates
// the engine's speed contract (>=100 MIPS scalar, >=5x on vector_heavy):
//   * fsim_scalar_interp / fsim_scalar_threaded — the scalar_heavy loop
//   * fsim_vector_interp / fsim_vector_threaded — the exact indexmac SpMM
// plus the wall-clock of the canonical tiny sweep (tests/golden), measured
// on one thread so the number tracks single-core simulator speed.
//
// Usage: sim_throughput [--out FILE] [--reps N] [--scale N]
//   --out FILE   where to write the JSON report (default
//                BENCH_sim_throughput.json in the working directory)
//   --reps N     timed repetitions per scenario; best rep is reported
//                (default 5)
//   --scale N    problem-size multiplier >= 1 (default 1; larger runs
//                amortize setup noise further)
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "asm/text_assembler.h"
#include "common/error.h"
#include "core/batch.h"
#include "core/runner.h"
#include "core/spmm_problem.h"
#include "core/sweep.h"
#include "fsim/machine.h"
#include "fsim/threaded.h"
#include "kernels/spmv_kernel.h"
#include "sparse/nm_matrix.h"
#include "timing/timing_sim.h"

namespace {

using namespace indexmac;

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// One measured scenario: dynamic instructions per timed run plus the best
/// wall-clock over the repetitions.
struct ScenarioResult {
  std::string name;
  std::uint64_t instructions = 0;  ///< dynamic instructions per repetition
  double best_seconds = 0;
  unsigned reps = 0;
  /// Simulated cycles of the workload (0 when not meaningful for the
  /// scenario). Deterministic, so tracked in the JSON report: the
  /// vector_heavy / algorithm4 pair records the Algorithm 3 -> 4 cycle
  /// gain alongside simulator speed.
  std::uint64_t sim_cycles = 0;

  [[nodiscard]] double mips() const {
    return best_seconds <= 0 ? 0 : static_cast<double>(instructions) / best_seconds / 1e6;
  }
};

/// Runs `body` (which returns the dynamic-instruction count of one full
/// timing-model execution) `reps` times after one untimed warm-up.
template <typename Body>
ScenarioResult measure(const std::string& name, unsigned reps, Body&& body) {
  ScenarioResult out;
  out.name = name;
  out.reps = reps;
  out.instructions = body();  // warm-up; also yields the instruction count
  out.best_seconds = 1e30;
  for (unsigned r = 0; r < reps; ++r) {
    const Clock::time_point start = Clock::now();
    const std::uint64_t instructions = body();
    const double elapsed = seconds_since(start);
    IMAC_CHECK(instructions == out.instructions,
               "sim_throughput: instruction count drifted between reps in " + name);
    if (elapsed < out.best_seconds) out.best_seconds = elapsed;
  }
  return out;
}

// ---- scenario bodies ----

/// The branchy scalar loop shared by scalar_heavy and the fsim_scalar_*
/// scenarios: loads, stores, ALU ops and a backward branch.
AssembledText scalar_loop_program(unsigned scale) {
  const unsigned iters = 40'960 * scale;  // multiple of 4096: lui materializes it exactly
  char source[512];
  std::snprintf(source, sizeof source, R"(
      lui   x2, 0x100
      addi  x1, x0, 0
      lui   x3, %u
      addi  x5, x0, 0
  loop:
      lw    x4, 0(x2)
      add   x5, x5, x4
      addi  x4, x4, 3
      sw    x4, 0(x2)
      xori  x6, x5, 85
      and   x7, x6, x5
      addi  x2, x2, 4
      andi  x2, x2, 2047
      lui   x8, 0x100
      or    x2, x2, x8
      addi  x1, x1, 1
      blt   x1, x3, loop
      ebreak
  )", iters >> 12);
  return assemble_text(source);
}

ScenarioResult scalar_heavy(unsigned reps, unsigned scale) {
  const AssembledText assembled = scalar_loop_program(scale);
  MainMemory mem;
  return measure("scalar_heavy", reps, [&] {
    timing::TimingSim sim(assembled.program, mem, timing::ProcessorConfig{});
    return sim.run().instructions;
  });
}

/// Exact indexmac SpMM run: vector dispatch, engine scoreboarding, vle32.
ScenarioResult vector_heavy(unsigned reps, unsigned scale) {
  const kernels::GemmDims dims{64 * scale, 256, 128};
  const core::SpmmProblem problem = core::SpmmProblem::random(dims, sparse::kSparsity14, 1);
  const core::RunConfig config{.algorithm = core::Algorithm::kIndexmac, .kernel = {}};
  std::uint64_t cycles = 0;
  ScenarioResult out = measure("vector_heavy", reps, [&] {
    const auto r = core::run_exact(problem, config, timing::ProcessorConfig{});
    cycles = r.stats.cycles;
    return r.stats.instructions;
  });
  out.sim_cycles = cycles;
  return out;
}

/// The same SpMM on Algorithm 4 (packed-index + dual-row MACs): exercises
/// the scalar ld / srli index path and the dual-MAC engine occupancy, and
/// tracks the simulated-cycle gain over vector_heavy's Algorithm 3 run.
ScenarioResult algorithm4(unsigned reps, unsigned scale) {
  const kernels::GemmDims dims{64 * scale, 256, 128};
  const core::SpmmProblem problem = core::SpmmProblem::random(dims, sparse::kSparsity14, 1);
  const core::RunConfig config{.algorithm = core::Algorithm::kIndexmac4, .kernel = {}};
  std::uint64_t cycles = 0;
  ScenarioResult out = measure("algorithm4", reps, [&] {
    const auto r = core::run_exact(problem, config, timing::ProcessorConfig{});
    cycles = r.stats.cycles;
    return r.stats.instructions;
  });
  out.sim_cycles = cycles;
  return out;
}

/// SpMV on vluxei32: every slot chunk gathers 16 elements through the L2.
ScenarioResult gather_heavy(unsigned reps, unsigned scale) {
  const std::size_t rows = 192 * scale;
  const std::size_t k = 1024;
  const auto dense = sparse::random_matrix<float>(rows, k, 11, -1.0f, 1.0f);
  const auto a = sparse::NmMatrix<float>::prune_from_dense(dense, sparse::kSparsity14);
  const auto packed = kernels::pack_spmv(a);
  AddressAllocator alloc;
  const kernels::SpmvLayout layout = kernels::make_spmv_layout(rows, k, packed.slots_padded, alloc);
  MainMemory mem;
  mem.write_f32s(layout.a_values, packed.values);
  mem.write_i32s(layout.a_offsets, packed.offsets);
  mem.write_f32s(layout.x_base, std::vector<float>(k, 0.5f));
  const Program program = kernels::emit_spmv_kernel(layout, kernels::ElemType::kF32);
  return measure("gather_heavy", reps, [&] {
    timing::TimingSim sim(program, mem, timing::ProcessorConfig{});
    return sim.run().instructions;
  });
}

/// The sampled estimator on a transformer-ish GEMM (what sweeps run).
ScenarioResult sampled(unsigned reps, unsigned scale) {
  const kernels::GemmDims dims{512 * scale, 512, 512};
  const core::RunConfig config{.algorithm = core::Algorithm::kIndexmac,
                               .kernel = {.unroll = 4}};
  return measure("sampled", reps, [&] {
    return core::run_sampled(dims, sparse::kSparsity14, config, timing::ProcessorConfig{})
        .sample_stats.instructions;
  });
}

// ---- functional-engine scenarios (no timing model) ----

/// Times one functional execution, setup excluded: each repetition rebuilds
/// pristine memory and a fresh Machine (and engine, so its block cache is
/// cold — predecode cost is part of the contract being measured), but only
/// the run itself is on the clock. Rep 0 is an untimed warm-up that also
/// pins the expected instruction count.
template <typename Setup>
ScenarioResult measure_fsim(const std::string& name, unsigned reps, ExecEngine engine,
                            Setup&& setup) {
  ScenarioResult out;
  out.name = name;
  out.reps = reps;
  out.best_seconds = 1e30;
  for (unsigned rep = 0; rep <= reps; ++rep) {
    MainMemory mem;
    const Program program = setup(mem);
    Machine machine(program, mem);
    const Clock::time_point start = Clock::now();
    StopReason stop;
    if (engine == ExecEngine::kThreaded) {
      ThreadedEngine threaded(machine);
      stop = threaded.run(2'000'000'000ull);
    } else {
      stop = machine.run(2'000'000'000ull);
    }
    const double elapsed = seconds_since(start);
    IMAC_CHECK(stop == StopReason::kEbreak, "sim_throughput: " + name + " did not halt");
    const std::uint64_t instructions = machine.instructions_retired();
    if (rep == 0) {
      out.instructions = instructions;
      continue;
    }
    IMAC_CHECK(instructions == out.instructions,
               "sim_throughput: instruction count drifted between reps in " + name);
    if (elapsed < out.best_seconds) out.best_seconds = elapsed;
  }
  return out;
}

ScenarioResult fsim_scalar(unsigned reps, unsigned scale, ExecEngine engine) {
  const AssembledText assembled = scalar_loop_program(scale);
  const std::string name = std::string("fsim_scalar_") + exec_engine_name(engine);
  return measure_fsim(name, reps, engine, [&](MainMemory&) { return assembled.program; });
}

ScenarioResult fsim_vector(unsigned reps, unsigned scale, ExecEngine engine) {
  const kernels::GemmDims dims{64 * scale, 256, 128};
  const core::SpmmProblem problem = core::SpmmProblem::random(dims, sparse::kSparsity14, 1);
  const core::RunConfig config{.algorithm = core::Algorithm::kIndexmac, .kernel = {}};
  const std::string name = std::string("fsim_vector_") + exec_engine_name(engine);
  return measure_fsim(name, reps, engine, [&](MainMemory& mem) {
    return core::prepare(problem, config, mem).program;
  });
}

/// Wall-clock of the canonical golden sweep on one thread.
double canonical_sweep_seconds() {
  const std::string spec_path = std::string(INDEXMAC_GOLDEN_DIR) + "/tiny_sweep.json";
  const core::SweepSpec spec = core::parse_sweep_spec_file(spec_path);
  const std::vector<core::SweepPoint> points = core::expand_sweep(spec);
  core::BatchRunner pool(1);
  (void)core::run_sweep(spec, points, pool);  // warm-up
  const Clock::time_point start = Clock::now();
  (void)core::run_sweep(spec, points, pool);
  return seconds_since(start);
}

std::string json_report(const std::vector<ScenarioResult>& scenarios, double sweep_seconds,
                        unsigned scale) {
  std::string out = "{\n";
  out += "  \"schema\": \"indexmac-sim-throughput-v1\",\n";
#ifdef NDEBUG
  out += "  \"build\": \"release\",\n";
#else
  out += "  \"build\": \"debug\",\n";
#endif
  out += "  \"scale\": " + std::to_string(scale) + ",\n";
  out += "  \"scenarios\": [\n";
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const ScenarioResult& s = scenarios[i];
    char cycles[48] = "";
    if (s.sim_cycles != 0)
      std::snprintf(cycles, sizeof cycles, ", \"sim_cycles\": %llu",
                    static_cast<unsigned long long>(s.sim_cycles));
    char line[320];
    std::snprintf(line, sizeof line,
                  "    {\"name\": \"%s\", \"instructions\": %llu, \"best_seconds\": %.6f, "
                  "\"mips\": %.2f, \"reps\": %u%s}%s\n",
                  s.name.c_str(), static_cast<unsigned long long>(s.instructions),
                  s.best_seconds, s.mips(), s.reps, cycles,
                  i + 1 < scenarios.size() ? "," : "");
    out += line;
  }
  out += "  ],\n";
  char sweep[96];
  std::snprintf(sweep, sizeof sweep, "  \"canonical_sweep_seconds\": %.6f\n", sweep_seconds);
  out += sweep;
  out += "}\n";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = "BENCH_sim_throughput.json";
  unsigned reps = 5;
  unsigned scale = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out_path = argv[++i];
    else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc)
      reps = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    else if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc)
      scale = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    else {
      std::fprintf(stderr,
                   "usage: sim_throughput [--out FILE] [--reps N] [--scale N]\n");
      return 2;
    }
  }
  if (reps == 0) reps = 1;
  if (scale == 0) scale = 1;

  try {
    std::vector<ScenarioResult> scenarios;
    scenarios.push_back(scalar_heavy(reps, scale));
    scenarios.push_back(vector_heavy(reps, scale));
    scenarios.push_back(algorithm4(reps, scale));
    scenarios.push_back(gather_heavy(reps, scale));
    scenarios.push_back(sampled(reps, scale));
    scenarios.push_back(fsim_scalar(reps, scale, indexmac::ExecEngine::kInterp));
    scenarios.push_back(fsim_scalar(reps, scale, indexmac::ExecEngine::kThreaded));
    scenarios.push_back(fsim_vector(reps, scale, indexmac::ExecEngine::kInterp));
    scenarios.push_back(fsim_vector(reps, scale, indexmac::ExecEngine::kThreaded));
    for (const ScenarioResult& s : scenarios)
      std::printf("%-20s %10llu instructions   best %8.4f s   %8.2f MIPS\n", s.name.c_str(),
                  static_cast<unsigned long long>(s.instructions), s.best_seconds, s.mips());
    // The engine-speedup pairs the threaded engine is gated on: same
    // program, same rep policy, one binary — so the ratio is stable
    // against machine noise in a way two separate runs are not.
    const auto find = [&](const std::string& n) -> const ScenarioResult* {
      for (const ScenarioResult& s : scenarios)
        if (s.name == n) return &s;
      return nullptr;
    };
    for (const char* pair : {"fsim_scalar", "fsim_vector"}) {
      const ScenarioResult* interp = find(std::string(pair) + "_interp");
      const ScenarioResult* threaded = find(std::string(pair) + "_threaded");
      if (interp != nullptr && threaded != nullptr && threaded->best_seconds > 0)
        std::printf("%-20s threaded speedup %.2fx\n", pair,
                    interp->best_seconds / threaded->best_seconds);
    }
    const double sweep_seconds = canonical_sweep_seconds();
    std::printf("%-14s %35s %8.4f s\n", "tiny_sweep", "wall (1 thread)", sweep_seconds);

    const std::string report = json_report(scenarios, sweep_seconds, scale);
    std::FILE* out = std::fopen(out_path, "wb");
    if (out == nullptr) {
      std::fprintf(stderr, "sim_throughput: cannot write %s\n", out_path);
      return 1;
    }
    std::fwrite(report.data(), 1, report.size(), out);
    std::fclose(out);
    std::printf("wrote %s\n", out_path);
  } catch (const indexmac::SimError& e) {
    std::fprintf(stderr, "sim_throughput: %s\n", e.what());
    return 1;
  }
  return 0;
}
