// Section IV-A ablation: dataflow comparison for Row-Wise-SpMM. The paper
// tested A-, B- and C-stationary dataflows and found B-stationary gave the
// best total execution time (and therefore used it for both kernels).
// Exact (non-sampled) simulations on representative early/late-layer-shaped
// GEMMs, scaled down to keep exact simulation tractable.
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace indexmac;
  using namespace indexmac::bench;
  using core::Algorithm;
  using core::RunConfig;
  using kernels::Dataflow;

  const timing::ProcessorConfig proc{};
  print_section("Ablation: Row-Wise-SpMM dataflow (Section IV-A)");
  std::printf("Paper: B-stationary yields the best Row-Wise-SpMM execution time, so all\n"
              "headline comparisons use it for both kernels.\n\n");

  struct Shape {
    const char* label;
    kernels::GemmDims dims;
  };
  // Early layers: few A rows, many B columns. Late layers: the opposite.
  // (Scaled-down layer shapes keep the exact simulations under ~15 s.)
  const Shape shapes[] = {
      {"early-layer shape", {16, 144, 392}},
      {"mid-layer shape", {32, 288, 98}},
      {"late-layer shape", {128, 576, 49}},
  };

  // Four exact simulations per (sparsity, shape) cell; each shape's problem
  // instance is built once and shared by its four jobs.
  core::BatchRunner pool;
  std::vector<core::BatchJob> jobs;
  for (const auto sp : {sparse::kSparsity14, sparse::kSparsity24}) {
    for (const Shape& shape : shapes) {
      auto problem = std::make_shared<const core::SpmmProblem>(
          core::SpmmProblem::random(shape.dims, sp, 42));
      auto add = [&](Algorithm alg, Dataflow df) {
        const RunConfig config{.algorithm = alg, .kernel = {.unroll = 4, .dataflow = df}};
        jobs.push_back(core::exact_job(problem, config, proc));
      };
      add(Algorithm::kRowwiseSpmm, Dataflow::kAStationary);
      add(Algorithm::kRowwiseSpmm, Dataflow::kBStationary);
      add(Algorithm::kRowwiseSpmm, Dataflow::kCStationary);
      add(Algorithm::kIndexmac, Dataflow::kBStationary);
    }
  }
  print_pool_note(jobs.size(), pool);
  const auto results = core::run_batch(pool, jobs);

  std::size_t cursor = 0;
  for (const auto sp : {sparse::kSparsity14, sparse::kSparsity24}) {
    TextTable table;
    table.set_header({"shape", "GEMM (RxKxN)", "A-stationary", "B-stationary", "C-stationary",
                      "Proposed (B-stat)"});
    for (const Shape& shape : shapes) {
      const auto a = results[cursor++].stats.cycles;
      const auto b = results[cursor++].stats.cycles;
      const auto c = results[cursor++].stats.cycles;
      const auto p = results[cursor++].stats.cycles;
      table.add_row({shape.label, dims_label(shape.dims), fmt_count(a), fmt_count(b),
                     fmt_count(c), fmt_count(p)});
    }
    std::printf("Sparsity %d:%d (cycles, lower is better)\n%s\n", sp.n, sp.m,
                table.to_string().c_str());
  }
  return 0;
}
