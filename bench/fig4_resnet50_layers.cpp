// Figure 4: per-layer speedup of the proposed vindexmac kernel over
// Row-Wise-SpMM for every unique conv-layer GEMM of ResNet50, at 1:4 and
// 2:4 structured sparsity. Speedups are normalized to Row-Wise-SpMM, as in
// the paper; both kernels use the B-stationary dataflow with 4-way
// unrolling and L=16 preloaded B rows. The layer list is re-derived from
// the "resnet50" model graph's typed layer records; all measurements run
// concurrently on a BatchRunner pool.
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace indexmac;
  using namespace indexmac::bench;

  const timing::ProcessorConfig proc{};
  const workloads::ModelGraph& graph = workloads::model_graph("resnet50");

  print_section("Fig. 4: ResNet50 per-layer speedup (Proposed vs Row-Wise-SpMM)");
  std::printf("Paper reports: 1:4 sparsity 1.60x-2.15x, 2:4 sparsity 1.63x-1.99x,\n"
              "with the speedup slightly decreasing toward the later (small-B) layers.\n\n");

  // Both sparsities of one layer sit adjacently in the query list.
  core::BatchRunner pool;
  std::vector<LayerQuery> queries;
  queries.reserve(graph.layers.size() * 2);
  for (const auto& layer : graph.layers) {
    queries.push_back({layer.gemm, sparse::kSparsity14, proc});
    queries.push_back({layer.gemm, sparse::kSparsity24, proc});
  }
  print_pool_note(queries.size() * 2, pool);
  const auto measured = measure_layers(pool, queries);

  TextTable table;
  table.set_header({"#", "layer", "GEMM (RxKxN)", "count", "speedup 1:4", "speedup 2:4"});

  double min14 = 1e30, max14 = 0, min24 = 1e30, max24 = 0;
  double geo14 = 0, geo24 = 0;
  int idx = 0;
  for (const auto& layer : graph.layers) {
    const auto& m14 = measured[static_cast<std::size_t>(idx) * 2];
    const auto& m24 = measured[static_cast<std::size_t>(idx) * 2 + 1];
    table.add_row({std::to_string(++idx), layer.name, dims_label(layer.gemm),
                   std::to_string(layer.repeat), fmt_speedup(m14.speedup()),
                   fmt_speedup(m24.speedup())});
    min14 = std::min(min14, m14.speedup());
    max14 = std::max(max14, m14.speedup());
    min24 = std::min(min24, m24.speedup());
    max24 = std::max(max24, m24.speedup());
    geo14 += std::log(m14.speedup());
    geo24 += std::log(m24.speedup());
  }
  std::printf("%s\n", table.to_string().c_str());
  const double n = static_cast<double>(graph.layers.size());
  std::printf("1:4 sparsity: speedup range %.2fx-%.2fx, geomean %.2fx\n", min14, max14,
              std::exp(geo14 / n));
  std::printf("2:4 sparsity: speedup range %.2fx-%.2fx, geomean %.2fx\n", min24, max24,
              std::exp(geo24 / n));
  return 0;
}
