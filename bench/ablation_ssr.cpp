// Algorithm 5 ablation: the SSR streaming kernel (after the SSR/ISSR line
// of work, arXiv:2305.05559 and arXiv:2011.08070) against every other
// registered family. All five algorithms run the same exact simulation at
// unroll 1 — the one cell the dense baseline and the strictly-sequential
// streams both support — so the table isolates what the operand delivery
// mechanism (explicit loads vs packed strips vs address-generation
// streams) costs at identical MAC counts. The family list, labels and
// skip rules come from the AlgorithmRegistry, so a newly registered
// family appears here without editing this file.
#include <cstdio>

#include "bench_util.h"
#include "core/algorithm_registry.h"

int main() {
  using namespace indexmac;
  using namespace indexmac::bench;
  using core::AlgorithmDescriptor;
  using core::AlgorithmRegistry;
  using core::RunConfig;

  const timing::ProcessorConfig proc{};
  print_section("Ablation: Algorithm 5 (SSR streaming) vs all registered families");

  const kernels::GemmDims dims{64, 576, 98};
  const auto& families = AlgorithmRegistry::instance().all();

  core::BatchRunner pool;
  std::vector<core::BatchJob> jobs;
  for (const auto sp : {sparse::kSparsity14, sparse::kSparsity24}) {
    auto problem =
        std::make_shared<const core::SpmmProblem>(core::SpmmProblem::random(dims, sp, 7));
    for (const AlgorithmDescriptor& desc : families)
      jobs.push_back(core::exact_job(
          problem, RunConfig{.algorithm = desc.algorithm, .kernel = {.unroll = 1}}, proc));
  }
  print_pool_note(jobs.size(), pool);
  const auto results = core::run_batch(pool, jobs);

  std::size_t cursor = 0;
  for (const auto sp : {sparse::kSparsity14, sparse::kSparsity24}) {
    // Baselines for the speedup columns: Algorithm 2 (the paper's
    // baseline) and Algorithm 5, so the last column reads "how much
    // faster/slower than streaming".
    const std::size_t base = cursor;
    double rowwise_cycles = 0, ssr_cycles = 0;
    for (std::size_t i = 0; i < families.size(); ++i) {
      if (families[i].id == "rowwise") rowwise_cycles = results[base + i].cycles;
      if (families[i].id == "ssr") ssr_cycles = results[base + i].cycles;
    }
    TextTable table;
    table.set_header({"algorithm", "name", "cycles", "accesses", "vs Alg2", "vs ssr"});
    for (const AlgorithmDescriptor& desc : families) {
      const auto& r = results[cursor++];
      table.add_row({desc.id, desc.display_name, fmt_count(r.stats.cycles),
                     std::to_string(r.data_accesses), fmt_speedup(rowwise_cycles / r.cycles),
                     fmt_speedup(ssr_cycles / r.cycles)});
    }
    std::printf("Sparsity %d:%d on GEMM %s, unroll 1\n%s\n", sp.n, sp.m,
                dims_label(dims).c_str(), table.to_string().c_str());
  }
  return 0;
}
