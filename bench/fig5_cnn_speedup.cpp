// Figure 5: whole-network speedup of the proposed vindexmac kernel over
// Row-Wise-SpMM for ResNet50, DenseNet121 and InceptionV3 at 1:4 and 2:4
// structured sparsity. Network time = sum over conv layers of per-layer
// cycles (unique GEMM shapes measured once, weighted by multiplicity).
// Layer lists are re-derived from each network's model graph; every layer
// of every network at both sparsities is one batch job, so the whole
// figure is measured in a single multi-core sweep.
#include <cstdio>

#include "bench_util.h"

namespace {

using namespace indexmac;
using namespace indexmac::bench;

struct NetworkResult {
  double rowwise = 0;
  double proposed = 0;
};

/// Weighted per-network totals from the index-aligned measurement slice
/// starting at `first`.
NetworkResult accumulate_network(const std::vector<workloads::LayerRecord>& layers,
                                 const std::vector<LayerMeasurement>& measured,
                                 std::size_t first) {
  NetworkResult total;
  for (std::size_t i = 0; i < layers.size(); ++i) {
    const auto& m = measured[first + i];
    total.rowwise += m.rowwise_cycles * layers[i].repeat;
    total.proposed += m.proposed_cycles * layers[i].repeat;
  }
  return total;
}

}  // namespace

int main() {
  const timing::ProcessorConfig proc{};
  print_section("Fig. 5: total-execution-time speedup per CNN (Proposed vs Row-Wise-SpMM)");
  std::printf("Paper reports: average speedup 1.95x at 1:4 sparsity, 1.88x at 2:4 sparsity.\n\n");

  const char* suite_names[] = {"resnet50", "densenet121", "inceptionv3"};

  // One flat query list: per suite, all unique layers at 1:4 then at 2:4.
  core::BatchRunner pool;
  std::vector<LayerQuery> queries;
  for (const char* name : suite_names) {
    const workloads::ModelGraph& graph = workloads::model_graph(name);
    for (const auto sp : {sparse::kSparsity14, sparse::kSparsity24})
      for (const auto& layer : graph.layers) queries.push_back({layer.gemm, sp, proc});
  }
  print_pool_note(queries.size() * 2, pool);
  const auto measured = measure_layers(pool, queries);

  TextTable table;
  table.set_header({"network", "conv layers", "speedup 1:4", "speedup 2:4"});
  double sum14 = 0, sum24 = 0;
  int n = 0;
  std::size_t cursor = 0;
  for (const char* name : suite_names) {
    const workloads::ModelGraph& graph = workloads::model_graph(name);
    const auto& layers = graph.layers;
    const NetworkResult r14 = accumulate_network(layers, measured, cursor);
    const NetworkResult r24 = accumulate_network(layers, measured, cursor + layers.size());
    cursor += layers.size() * 2;
    const double s14 = r14.rowwise / r14.proposed;
    const double s24 = r24.rowwise / r24.proposed;
    table.add_row({graph.display_name, std::to_string(graph.layer_count()), fmt_speedup(s14),
                   fmt_speedup(s24)});
    sum14 += s14;
    sum24 += s24;
    ++n;
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Average speedup: 1:4 -> %.2fx, 2:4 -> %.2fx\n", sum14 / n, sum24 / n);
  return 0;
}
