// Figure 5: whole-network speedup of the proposed vindexmac kernel over
// Row-Wise-SpMM for ResNet50, DenseNet121 and InceptionV3 at 1:4 and 2:4
// structured sparsity. Network time = sum over conv layers of per-layer
// cycles (unique GEMM shapes measured once, weighted by multiplicity).
#include <cstdio>

#include "bench_util.h"

namespace {

using namespace indexmac;
using namespace indexmac::bench;

struct NetworkResult {
  double rowwise = 0;
  double proposed = 0;
};

NetworkResult measure_network(const cnn::CnnModel& model, sparse::Sparsity sp,
                              const timing::ProcessorConfig& proc) {
  NetworkResult total;
  for (const auto& layer : cnn::unique_gemms(model)) {
    const auto m = measure_layer(layer.dims, sp, proc);
    total.rowwise += m.rowwise_cycles * layer.count;
    total.proposed += m.proposed_cycles * layer.count;
  }
  return total;
}

}  // namespace

int main() {
  const timing::ProcessorConfig proc{};
  print_section("Fig. 5: total-execution-time speedup per CNN (Proposed vs Row-Wise-SpMM)");
  std::printf("Paper reports: average speedup 1.95x at 1:4 sparsity, 1.88x at 2:4 sparsity.\n\n");

  TextTable table;
  table.set_header({"network", "conv layers", "speedup 1:4", "speedup 2:4"});
  double sum14 = 0, sum24 = 0;
  int n = 0;
  for (const auto& model : {cnn::resnet50(), cnn::densenet121(), cnn::inceptionv3()}) {
    const NetworkResult r14 = measure_network(model, sparse::kSparsity14, proc);
    const NetworkResult r24 = measure_network(model, sparse::kSparsity24, proc);
    const double s14 = r14.rowwise / r14.proposed;
    const double s24 = r24.rowwise / r24.proposed;
    table.add_row({model.name, std::to_string(model.layers.size()), fmt_speedup(s14),
                   fmt_speedup(s24)});
    sum14 += s14;
    sum24 += s24;
    ++n;
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Average speedup: 1:4 -> %.2fx, 2:4 -> %.2fx\n", sum14 / n, sum24 / n);
  return 0;
}
