// Follow-up-paper ablation: Algorithm 4 (packed-index + dual-row
// vindexmac variants, arXiv:2501.10189) against Algorithm 2
// ("Row-Wise-SpMM") and Algorithm 3 ("Proposed"), across unroll factors
// and both paper sparsities. Exact simulations; the v2 column shows the
// gain of eliminating the per-slot vmv.x.s round trips and halving the
// dependent-MAC chain.
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace indexmac;
  using namespace indexmac::bench;
  using core::Algorithm;
  using core::RunConfig;

  const timing::ProcessorConfig proc{};
  print_section(
      "Ablation: Algorithm 4 (packed-index + dual-row MACs) vs Algorithms 2 and 3");

  const kernels::GemmDims dims{64, 576, 98};
  const unsigned unrolls[] = {1u, 2u, 4u};
  const Algorithm algs[] = {Algorithm::kRowwiseSpmm, Algorithm::kIndexmac,
                            Algorithm::kIndexmac4};

  // Every (sparsity, unroll, algorithm) cell in one batch; each sparsity's
  // jobs share one problem instance.
  core::BatchRunner pool;
  std::vector<core::BatchJob> jobs;
  for (const auto sp : {sparse::kSparsity14, sparse::kSparsity24}) {
    auto problem =
        std::make_shared<const core::SpmmProblem>(core::SpmmProblem::random(dims, sp, 7));
    for (const unsigned unroll : unrolls)
      for (const Algorithm alg : algs)
        jobs.push_back(core::exact_job(
            problem, RunConfig{.algorithm = alg, .kernel = {.unroll = unroll}}, proc));
  }
  print_pool_note(jobs.size(), pool);
  const auto results = core::run_batch(pool, jobs);

  std::size_t cursor = 0;
  for (const auto sp : {sparse::kSparsity14, sparse::kSparsity24}) {
    TextTable table;
    table.set_header({"unroll", "Alg2 cycles", "Alg3 cycles", "Alg4 cycles",
                      "Alg4 vs Alg2", "Alg4 vs Alg3"});
    for (const unsigned unroll : unrolls) {
      const auto& r2 = results[cursor++];
      const auto& r3 = results[cursor++];
      const auto& r4 = results[cursor++];
      table.add_row({std::to_string(unroll), fmt_count(r2.stats.cycles),
                     fmt_count(r3.stats.cycles), fmt_count(r4.stats.cycles),
                     fmt_speedup(r2.cycles / r4.cycles), fmt_speedup(r3.cycles / r4.cycles)});
    }
    std::printf("Sparsity %d:%d on GEMM %s\n%s\n", sp.n, sp.m, dims_label(dims).c_str(),
                table.to_string().c_str());
  }
  return 0;
}
