# Shared compiler-flag setup: warning set and opt-in sanitizers. Applied
# through the indexmac_flags interface target so every binary in the tree
# (library, tests, benches, tools) gets a consistent build line.
add_library(indexmac_flags INTERFACE)

if(INDEXMAC_WARNINGS)
  if(CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
    target_compile_options(indexmac_flags INTERFACE -Wall -Wextra)
  elseif(MSVC)
    target_compile_options(indexmac_flags INTERFACE /W4)
  endif()
endif()

if(INDEXMAC_SANITIZE)
  string(REPLACE "," ";" _imac_san_list "${INDEXMAC_SANITIZE}")
  foreach(_san IN LISTS _imac_san_list)
    target_compile_options(indexmac_flags INTERFACE -fsanitize=${_san} -fno-omit-frame-pointer)
    target_link_options(indexmac_flags INTERFACE -fsanitize=${_san})
  endforeach()
  message(STATUS "indexmac: sanitizers enabled: ${INDEXMAC_SANITIZE}")
endif()
