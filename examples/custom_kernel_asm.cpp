// Custom kernel in text assembly: write a vindexmac micro-kernel by hand,
// assemble it, show the disassembly, and execute it on the functional
// simulator. Demonstrates the ISA-extension workflow end to end (the
// paper's toolchain modification, reproduced in-library).
#include <cstdio>

#include "asm/text_assembler.h"
#include "fsim/machine.h"

int main() {
  using namespace indexmac;

  // C[0,:] += A[0,0]*B[0,:] + A[0,2]*B[2,:] for a 1:2-sparse row of A with
  // B rows preloaded in v16..v19. The col_idx values (16, 18) are VRF
  // register numbers, precomputed as Section III describes.
  const std::string source = R"(
      li   t0, 16
      vsetvli zero, t0, e32m1

      # preload 4 rows of B from 0x2000 (pitch 64 bytes)
      li   t1, 0x2000
      vle32.v v16, (t1)
      addi t1, t1, 64
      vle32.v v17, (t1)
      addi t1, t1, 64
      vle32.v v18, (t1)
      addi t1, t1, 64
      vle32.v v19, (t1)

      # load the packed non-zero values and VRF indices of A's row 0
      li   t2, 0x1000
      vle32.v v4, (t2)        # values:  [a00, a02, ...]
      li   t3, 0x1100
      vle32.v v8, (t3)        # col_idx: [16, 18, ...]

      vmv.v.i v0, 0           # C accumulator

  loop:                        # two non-zeros in this row
      vmv.x.s t4, v8          # index -> scalar register
      vindexmac.vx v0, v4, t4 # C += value * VRF[t4]
      vslide1down.vx v4, v4, zero
      vslide1down.vx v8, v8, zero
      addi t5, t5, 1
      li   t6, 2
      blt  t5, t6, loop

      li   a0, 0x3000
      vse32.v v0, (a0)        # store C row
      ebreak
  )";

  const AssembledText assembled = assemble_text(source);
  std::printf("assembled %zu instructions; disassembly:\n%s\n",
              assembled.program.size(), assembled.program.listing().c_str());

  MainMemory mem;
  // A row 0 = [3, 0, 5, 0] in 1:2 blocks -> values [3,5], indices [v16,v18].
  mem.write_i32s(0x1000, std::vector<std::int32_t>{3, 5});
  mem.write_i32s(0x1100, std::vector<std::int32_t>{16, 18});
  for (std::int32_t row = 0; row < 4; ++row) {
    std::vector<std::int32_t> b(16);
    for (int j = 0; j < 16; ++j) b[j] = (row + 1) * 100 + j;
    mem.write_i32s(0x2000 + row * 64, b);
  }

  Machine machine(assembled.program, mem);
  const StopReason stop = machine.run();
  std::printf("execution stopped: %s after %llu instructions\n",
              stop == StopReason::kEbreak ? "ebreak" : "other",
              static_cast<unsigned long long>(machine.instructions_retired()));

  const auto c = mem.read_i32s(0x3000, 16);
  std::printf("C[0,:] = ");
  for (int j = 0; j < 16; ++j) std::printf("%d ", c[j]);
  std::printf("\n(expected element j: 3*(100+j) + 5*(300+j) = %d + 8j)\n", 3 * 100 + 5 * 300);
  return 0;
}
