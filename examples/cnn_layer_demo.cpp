// CNN layer demo: map a real ResNet50 convolution to a sparse x dense GEMM
// (the paper's Section IV workload construction), run both kernels on the
// timing model, and report the per-layer numbers behind Fig. 4.
//
//   ./build/examples/cnn_layer_demo [layer-index]
#include <cstdio>
#include <cstdlib>

#include "cnn/conv_layer.h"
#include "core/runner.h"

int main(int argc, char** argv) {
  using namespace indexmac;
  using core::Algorithm;
  using core::RunConfig;

  const auto model = cnn::resnet50();
  const auto layers = cnn::unique_gemms(model);
  std::size_t index = 7;  // layer2.0.conv2 by default: a mid-network 3x3
  if (argc > 1) index = std::strtoul(argv[1], nullptr, 10) % layers.size();
  const cnn::LayerGemm& layer = layers[index];
  const cnn::ConvLayer& conv = layer.representative;

  std::printf("ResNet50 layer %s: conv %ux%u, %u -> %u channels, %ux%u -> %ux%u\n",
              conv.name.c_str(), conv.kernel_h, conv.kernel_w, conv.in_channels,
              conv.out_channels, conv.in_h, conv.in_w, conv.out_h(), conv.out_w());
  std::printf("im2col GEMM: A[%zu x %zu] (weights, structured-sparse) x B[%zu x %zu] (features)\n",
              layer.dims.rows_a, layer.dims.k, layer.dims.k, layer.dims.cols_b);
  std::printf("this shape appears %u times in the network\n\n", layer.count);

  const timing::ProcessorConfig proc{};
  for (const auto sp : {sparse::kSparsity14, sparse::kSparsity24}) {
    const RunConfig rowwise{.algorithm = Algorithm::kRowwiseSpmm, .kernel = {.unroll = 4}};
    const RunConfig proposed{.algorithm = Algorithm::kIndexmac, .kernel = {.unroll = 4}};
    const auto r2 = core::run_sampled(layer.dims, sp, rowwise, proc);
    const auto r3 = core::run_sampled(layer.dims, sp, proposed, proc);
    std::printf("%u:%u sparsity:\n", sp.n, sp.m);
    std::printf("  Row-Wise-SpMM : %12.0f cycles  (%llu memory accesses)\n", r2.cycles,
                static_cast<unsigned long long>(r2.data_accesses));
    std::printf("  Proposed      : %12.0f cycles  (%llu memory accesses)\n", r3.cycles,
                static_cast<unsigned long long>(r3.data_accesses));
    std::printf("  speedup %.2fx | per-row steady cost %.1f vs %.1f cycles\n\n",
                r2.cycles / r3.cycles, r2.rowgroup_cycles_per_row, r3.rowgroup_cycles_per_row);
  }
  return 0;
}
