// Quickstart: multiply a structured-sparse matrix by a dense one with the
// vindexmac kernel, check the result against the scalar reference, and
// compare cycle counts with the Row-Wise-SpMM baseline.
//
//   cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "core/runner.h"
#include "core/spmm_problem.h"
#include "fsim/machine.h"

int main() {
  using namespace indexmac;
  using core::Algorithm;
  using core::RunConfig;

  // 1. Build a problem: A is 64x256 pruned to 2:4 structured sparsity
  //    (up to 2 non-zeros in every 4 consecutive elements), B is dense.
  const kernels::GemmDims dims{64, 256, 128};
  const auto problem = core::SpmmProblem::random(dims, sparse::kSparsity24, /*seed=*/1);
  std::printf("A: %zux%zu at %u:%u sparsity (%zu stored non-zeros), B: %zux%zu dense\n",
              problem.a.rows(), problem.a.cols(), problem.sp.n, problem.sp.m, problem.a.nnz(),
              problem.b.rows(), problem.b.cols());

  // 2. Functional check: run the vindexmac kernel on the architectural
  //    simulator and compare against the scalar reference.
  {
    MainMemory mem;
    const auto run = core::prepare(problem, RunConfig{.algorithm = Algorithm::kIndexmac, .kernel = {}}, mem);
    Machine machine(run.program, mem);
    machine.run();
    const auto c = core::read_c(run, mem);
    const auto ref = problem.reference();
    double max_err = 0;
    for (std::size_t i = 0; i < c.rows(); ++i)
      for (std::size_t j = 0; j < c.cols(); ++j)
        max_err = std::max(max_err, static_cast<double>(std::abs(c.at(i, j) - ref.at(i, j))));
    std::printf("functional check: kernel program of %zu instructions, max |error| = %.2e\n",
                run.program.size(), max_err);
  }

  // 3. Timing comparison on the simulated processor of Table I.
  const timing::ProcessorConfig proc{};
  const auto rowwise =
      core::run_exact(problem, RunConfig{.algorithm = Algorithm::kRowwiseSpmm, .kernel = {}}, proc);
  const auto proposed =
      core::run_exact(problem, RunConfig{.algorithm = Algorithm::kIndexmac, .kernel = {}}, proc);
  std::printf("\nRow-Wise-SpMM : %10llu cycles, %8llu memory accesses\n",
              static_cast<unsigned long long>(rowwise.stats.cycles),
              static_cast<unsigned long long>(rowwise.data_accesses()));
  std::printf("Proposed      : %10llu cycles, %8llu memory accesses\n",
              static_cast<unsigned long long>(proposed.stats.cycles),
              static_cast<unsigned long long>(proposed.data_accesses()));
  std::printf("speedup %.2fx, memory accesses reduced by %.1f%%\n",
              static_cast<double>(rowwise.stats.cycles) /
                  static_cast<double>(proposed.stats.cycles),
              100.0 * (1.0 - static_cast<double>(proposed.data_accesses()) /
                                 static_cast<double>(rowwise.data_accesses())));
  return 0;
}
