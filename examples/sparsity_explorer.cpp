// Sparsity explorer: sweep N:M patterns on a user-chosen GEMM and print
// the speedup and memory-access profile of the vindexmac kernel. Extends
// the paper's 1:4 / 2:4 evaluation to arbitrary patterns. The whole sweep
// runs as one multi-core batch (set INDEXMAC_THREADS to pin the pool).
//
//   ./build/examples/sparsity_explorer [rows k cols]
#include <cstdio>
#include <cstdlib>

#include "common/format.h"
#include "core/batch.h"

int main(int argc, char** argv) {
  using namespace indexmac;
  using core::Algorithm;
  using core::RunConfig;

  kernels::GemmDims dims{128, 512, 196};
  if (argc == 4) {
    dims.rows_a = std::strtoul(argv[1], nullptr, 10);
    dims.k = std::strtoul(argv[2], nullptr, 10);
    dims.cols_b = std::strtoul(argv[3], nullptr, 10);
  }
  std::printf("GEMM: C[%zu x %zu] = A[%zu x %zu] x B[%zu x %zu]\n\n", dims.rows_a, dims.cols_b,
              dims.rows_a, dims.k, dims.k, dims.cols_b);

  const timing::ProcessorConfig proc{};
  const sparse::Sparsity sweep[] = {sparse::Sparsity{1, 4}, sparse::Sparsity{2, 4},
                                    sparse::Sparsity{1, 2}, sparse::Sparsity{2, 8},
                                    sparse::Sparsity{4, 8}};
  const RunConfig rowwise{.algorithm = Algorithm::kRowwiseSpmm, .kernel = {.unroll = 4}};
  const RunConfig proposed{.algorithm = Algorithm::kIndexmac, .kernel = {.unroll = 4}};

  std::vector<core::BatchJob> jobs;
  for (const auto sp : sweep) {
    jobs.push_back(core::sampled_job(dims, sp, rowwise, proc));
    jobs.push_back(core::sampled_job(dims, sp, proposed, proc));
  }
  const auto results = core::run_batch(jobs);

  TextTable table;
  table.set_header({"sparsity", "density", "Row-Wise-SpMM cyc", "Proposed cyc", "speedup",
                    "accesses ratio"});
  std::size_t cursor = 0;
  for (const auto sp : sweep) {
    const auto& r2 = results[cursor++];
    const auto& r3 = results[cursor++];
    table.add_row({std::to_string(sp.n) + ":" + std::to_string(sp.m),
                   fmt_fixed(sp.density(), 2), fmt_count(static_cast<std::uint64_t>(r2.cycles)),
                   fmt_count(static_cast<std::uint64_t>(r3.cycles)),
                   fmt_speedup(r2.cycles / r3.cycles),
                   fmt_fixed(static_cast<double>(r3.data_accesses) /
                                 static_cast<double>(r2.data_accesses),
                             3)});
  }
  std::printf("%s", table.to_string().c_str());
  return 0;
}
