// Stall analysis: where do the two kernels' cycles go? Uses the timing
// model's vector-dispatch stall breakdown to show the paper's core
// mechanism directly: Row-Wise-SpMM serializes on twice as many
// vector->scalar round trips per non-zero (B-row address AND weight value)
// as the vindexmac kernel (index only), on top of its per-non-zero loads.
#include <cstdio>

#include "core/spmm_problem.h"
#include "timing/timing_sim.h"

namespace {

using namespace indexmac;

void analyze(const core::SpmmProblem& problem, core::Algorithm alg) {
  MainMemory mem;
  const auto run = core::prepare(
      problem, core::RunConfig{.algorithm = alg, .kernel = {.unroll = 4}}, mem);
  timing::TimingSim sim(run.program, mem, timing::ProcessorConfig{});
  const timing::TimingStats& s = sim.run();

  std::printf("%s\n", core::algorithm_name(alg));
  std::printf("  cycles %llu, instructions %llu (IPC %.2f)\n",
              static_cast<unsigned long long>(s.cycles),
              static_cast<unsigned long long>(s.instructions), s.ipc());
  std::printf("  vector mix: %llu loads, %llu stores, %llu MACs, %llu vec->scalar moves\n",
              static_cast<unsigned long long>(s.vector_loads),
              static_cast<unsigned long long>(s.vector_stores),
              static_cast<unsigned long long>(s.vector_macs),
              static_cast<unsigned long long>(s.vector_to_scalar_moves));
  // Stall cycles are attributed per instruction and overlap deeply in the
  // pipeline, so they sum to more than total cycles; the *ratios* between
  // categories and between kernels are the informative part.
  const auto& d = s.dispatch_stalls;
  std::printf("  vector dispatch stall cycles: %llu waiting on scalar operands "
              "(round trips), %llu queue-full, %llu branch shadow, %llu bandwidth\n",
              static_cast<unsigned long long>(d.scalar_operand),
              static_cast<unsigned long long>(d.queue_full),
              static_cast<unsigned long long>(d.branch_shadow),
              static_cast<unsigned long long>(d.bandwidth));
  std::printf("  memory: %llu data accesses, %llu DRAM line transfers\n\n",
              static_cast<unsigned long long>(s.mem.data_accesses()),
              static_cast<unsigned long long>(s.mem.dram_lines));
}

}  // namespace

int main() {
  using namespace indexmac;
  const auto problem =
      core::SpmmProblem::random({64, 256, 98}, sparse::kSparsity14, /*seed=*/2);
  std::printf("GEMM 64x256x98 at 1:4 structured sparsity\n\n");
  analyze(problem, core::Algorithm::kRowwiseSpmm);
  analyze(problem, core::Algorithm::kIndexmac);
  std::printf("Note the ~2x ratio in vec->scalar moves: Row-Wise-SpMM transfers the\n"
              "B-row address AND the weight value per non-zero; the proposed kernel\n"
              "transfers only the index, and its MACs read B from the register file.\n");
  return 0;
}
